//! Multi-device sharding: a pool of simulated chips that splits one
//! batch of work across devices and merges their clocks into a single
//! coherent timeline.
//!
//! The paper's §III-D sizes batches for multi-chip execution and its
//! cost model already prices inter-chip traffic
//! ([`crate::TpuConfig::cross_replica_cost_s`]); this module supplies
//! the missing runtime piece. A [`DevicePool`] owns several
//! [`SharedDevice`]s, plans a [`ShardPlan`] over a flight's lanes
//! (round-robin or cost-aware placement, see [`ShardStrategy`]),
//! executes the shards concurrently on the shared [`xai_parallel`]
//! pool's blocking lane — real host parallelism, one persistent crew
//! thread per occupied chip, reused across flights — and charges one
//! inter-chip gather collective for the reassembly stage.
//!
//! Timing semantics mirror [`crate::TpuDevice::run_phase`] one level
//! up: chips run concurrently, so a sharded execution advances the
//! pool's merged timeline by the *slowest device's* clock delta plus
//! the gather cost, while each device's own clock only records its
//! shard. Numeric results are pure functions of the inputs, so a
//! sharded execution is bit-identical to running the same lanes on
//! one device.

use crate::config::TpuConfig;
use crate::device::TpuDevice;
use crate::fault::{FaultPlan, FaultStats, TPU_FAULT, TPU_QUARANTINE};
use crate::shared::SharedDevice;
use crate::topology::Topology;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use xai_sync::{LockClass, OrderedMutex, OrderedMutexGuard};

/// The pool's merged lane timeline. Ranked between the flight queue
/// (whose dispatch shards across the pool) and the per-chip device
/// locks the shards charge.
static TPU_POOL: LockClass = LockClass::new("tpu::pool", 25);
use xai_tensor::{Result, TensorError};

/// The installed fault plan plus its deterministic draw counter. One
/// transient-fault draw is consumed per live shard per attempt, in
/// device-index order, so a seeded chaos run replays bit-for-bit in a
/// single-submitter driver.
#[derive(Debug, Clone, Default)]
struct FaultState {
    plan: Option<FaultPlan>,
    draws: u64,
}

/// One quarantined chip.
#[derive(Debug, Clone, Copy, PartialEq)]
struct QuarantineEntry {
    chip: usize,
    /// Simulated time at which a cooldown probe may re-admit the chip.
    until_s: f64,
    /// Fail-stopped chips never re-admit: probes re-confirm the death.
    permanent: bool,
}

/// Quarantine entries plus the fault-layer observability counters.
#[derive(Debug, Clone, Default)]
struct QuarantineState {
    entries: Vec<QuarantineEntry>,
    stats: FaultStats,
}

/// How a [`ShardPlan`] places lanes onto devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Lane `i` goes to device `i % devices` — oblivious to lane
    /// cost, but preserves locality of consecutive lanes and is the
    /// cheapest plan to compute.
    RoundRobin,
    /// Longest-processing-time-first: lanes are placed heaviest-first
    /// onto the currently least-loaded device, which minimises the
    /// makespan (the slowest chip's busy time — exactly what the
    /// merged timeline charges) for heterogeneous lanes. Ties break
    /// on lane order and device index, so the plan is deterministic.
    #[default]
    CostAware,
    /// LPT balance traded against placement locality on the pool's
    /// [`Topology`]: the plan packs lanes onto the smallest
    /// pod-aligned prefix of devices whose LPT makespan matches the
    /// full-width plan's, so a flight occupies fewer collective
    /// participants (a cheaper ring/torus gather) whenever spreading
    /// wider would not finish compute any sooner. On a flat crossbar
    /// this is exactly [`ShardStrategy::CostAware`]. The pooled
    /// dispatcher additionally dry-runs pod-aligned widths in real
    /// simulated seconds when this strategy is selected (see
    /// `TpuAccel::fanout_plan` in `xai-accel`).
    TopologyAware,
}

/// Per-lane cost description consumed by the shard planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneCost {
    /// Relative compute cost of the lane (any consistent unit; the
    /// planner only compares sums).
    pub compute: f64,
    /// Bytes of this lane's result that the inter-chip gather must
    /// move when the lane lands on a non-primary device.
    pub gather_bytes: usize,
}

/// The placement of a flight's lanes onto a pool's devices.
///
/// # Examples
///
/// ```
/// use xai_tpu::{LaneCost, ShardPlan, ShardStrategy};
///
/// let lanes: Vec<LaneCost> = [4.0, 1.0, 3.0, 2.0]
///     .iter()
///     .map(|&compute| LaneCost { compute, gather_bytes: 64 })
///     .collect();
/// let plan = ShardPlan::plan(&lanes, 2, ShardStrategy::CostAware);
/// // Heaviest-first onto the least-loaded device: {4.0, 1.0} | {3.0, 2.0}.
/// assert_eq!(plan.assignments(), &[vec![0, 1], vec![2, 3]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `assignments[d]` lists the lane indices placed on device `d`,
    /// in dispatch order.
    assignments: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Plans `lanes` onto `devices` chips under `strategy`, assuming
    /// a flat-crossbar fabric (use [`ShardPlan::plan_on`] to let a
    /// ring/torus topology shape the placement). With one device (or
    /// one lane) every lane lands on device 0. `devices == 0` is a
    /// caller bug the planner absorbs rather than trusts: the plan is
    /// computed as if one device existed.
    pub fn plan(lanes: &[LaneCost], devices: usize, strategy: ShardStrategy) -> ShardPlan {
        Self::plan_on(lanes, devices, strategy, &Topology::flat())
    }

    /// Plans `lanes` onto `devices` chips under `strategy` on a
    /// specific fabric. The topology only matters to
    /// [`ShardStrategy::TopologyAware`]: it packs lanes onto the
    /// narrowest [`Topology::fanout_widths`] prefix whose LPT
    /// makespan matches the full-width plan's, so the flight's
    /// gather involves as few collective participants as balance
    /// allows. `devices == 0` plans for one device, as in
    /// [`ShardPlan::plan`].
    pub fn plan_on(
        lanes: &[LaneCost],
        devices: usize,
        strategy: ShardStrategy,
        topology: &Topology,
    ) -> ShardPlan {
        let devices = devices.max(1);
        match strategy {
            ShardStrategy::RoundRobin => {
                let mut assignments: Vec<Vec<usize>> = (0..devices).map(|_| Vec::new()).collect();
                for i in 0..lanes.len() {
                    assignments[i % devices].push(i);
                }
                ShardPlan { assignments }
            }
            ShardStrategy::CostAware => Self::plan_width(lanes, devices, devices),
            ShardStrategy::TopologyAware => {
                let full = Self::plan_width(lanes, devices, devices);
                let target = full.makespan(lanes);
                for &w in &topology.fanout_widths(devices) {
                    if w >= devices {
                        break;
                    }
                    let narrow = Self::plan_width(lanes, devices, w);
                    if narrow.makespan(lanes) <= target {
                        return narrow;
                    }
                }
                full
            }
        }
    }

    /// LPT over a prefix: lanes are placed heaviest-first onto the
    /// least-loaded of the first `width` devices (clamped to
    /// `1..=devices`), while the plan still covers all `devices`
    /// chips so it stays valid for the whole pool. Ties break on lane
    /// order and device index, so the plan is deterministic.
    pub fn plan_width(lanes: &[LaneCost], devices: usize, width: usize) -> ShardPlan {
        let devices = devices.max(1);
        let width = width.clamp(1, devices);
        let mut assignments: Vec<Vec<usize>> = (0..devices).map(|_| Vec::new()).collect();
        // LPT: heaviest lane first (stable on lane index), to
        // whichever device is least loaded (stable on device index).
        let mut order: Vec<usize> = (0..lanes.len()).collect();
        order.sort_by(|&a, &b| {
            lanes[b]
                .compute
                .partial_cmp(&lanes[a].compute)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut load = vec![0.0f64; width];
        for i in order {
            let d = load
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(d, _)| d)
                .unwrap_or(0);
            load[d] += lanes[i].compute;
            assignments[d].push(i);
        }
        ShardPlan { assignments }
    }

    /// The heaviest device's summed lane compute under this plan —
    /// what the merged timeline's slowest-shard term scales with.
    pub fn makespan(&self, lanes: &[LaneCost]) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.iter().map(|&i| lanes[i].compute).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Lane indices per device, in dispatch order.
    pub fn assignments(&self) -> &[Vec<usize>] {
        &self.assignments
    }

    /// Number of devices that received at least one lane.
    pub fn occupied_devices(&self) -> usize {
        self.assignments.iter().filter(|a| !a.is_empty()).count()
    }

    /// The gather's per-shard payload: the largest single lane's
    /// `gather_bytes`. The inter-chip gather follows the same §III-D
    /// convention as [`crate::TpuDevice::cross_replica_sum`] —
    /// participants ship their shards over parallel links, so the
    /// collective is priced at `α + β·bytes` of **one** shard (the
    /// largest), not the summed traffic.
    pub fn gather_shard_bytes(&self, lanes: &[LaneCost]) -> usize {
        self.assignments
            .iter()
            .flatten()
            .map(|&i| lanes[i].gather_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Re-maps a plan computed over a device *subset* onto the full
    /// pool: `device_map[s]` names the pool device that subset slot
    /// `s` targeted, and the returned plan has `total` device slots —
    /// how a fan-out planned over the healthy survivors becomes a
    /// valid whole-pool plan. Out-of-range map entries fold onto the
    /// primary device rather than panicking.
    pub fn project(&self, device_map: &[usize], total: usize) -> ShardPlan {
        let total = total.max(1);
        let mut assignments: Vec<Vec<usize>> = (0..total).map(|_| Vec::new()).collect();
        for (slot, lanes) in self.assignments.iter().enumerate() {
            if lanes.is_empty() {
                continue;
            }
            let d = device_map.get(slot).copied().unwrap_or(0) % total;
            assignments[d].extend(lanes.iter().copied());
        }
        ShardPlan { assignments }
    }
}

/// One shard's return value: its lanes' results in order, plus the
/// simulated seconds the shard charged its chip (measured atomically,
/// e.g. via [`SharedDevice::timed`]).
pub type ShardOutcome<R> = Result<(Vec<R>, f64)>;

/// The outcome of one [`DevicePool::run_sharded`] execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRun<R> {
    /// Per-lane results, in the caller's lane order.
    pub results: Vec<R>,
    /// This execution's exact contribution to the merged timeline:
    /// the slowest shard's self-reported charge plus the inter-chip
    /// gather (zero when only one chip was occupied).
    pub seconds: f64,
}

/// The pool's merged simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct PoolTimeline {
    /// Merged wall time, seconds: slowest-chip deltas plus gathers
    /// plus externally-charged kernels.
    wall_s: f64,
    /// Inter-chip gather time, seconds.
    gather_s: f64,
    /// Number of sharded executions that actually fanned out to more
    /// than one chip.
    sharded_flights: u64,
}

/// A pool of simulated TPU chips behind one merged clock.
///
/// The pool is `Send + Sync`: shard execution uses scoped threads
/// internally, and all mutable state (the per-device simulators and
/// the merged timeline) lives behind locks that recover from
/// poisoning, so one panicking shard can never wedge the pool — the
/// failing execution surfaces [`TensorError::WorkerPanicked`] and the
/// next one serves normally.
///
/// # Examples
///
/// ```
/// use xai_tpu::{DevicePool, LaneCost, TpuConfig};
/// use xai_tensor::Matrix;
///
/// # fn main() -> Result<(), xai_tensor::TensorError> {
/// let pool = DevicePool::new(TpuConfig::small_test(), 4);
/// let work: Vec<Matrix<f64>> = (0..8)
///     .map(|i| Matrix::filled(4, 4, 0.1 * (i + 1) as f64))
///     .collect::<Result<_, _>>()?;
/// let run = pool.run_sharded(
///     work,
///     |m| LaneCost { compute: m.len() as f64, gather_bytes: 8 * m.len() },
///     // Each shard charges its chip and reports the exact delta,
///     // measured atomically under the device lock.
///     |device, shard| device.timed(|d| d.run_phase(shard, |core, s| core.matmul(&s, &s))),
/// )?;
/// assert_eq!(run.results.len(), 8);
/// // Chips ran concurrently: the merged timeline advanced by the
/// // slowest shard plus the inter-chip gather.
/// assert_eq!(pool.wall_seconds(), run.seconds);
/// assert!(pool.gather_seconds() > 0.0); // inter-chip reassembly
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<SharedDevice>,
    strategy: ShardStrategy,
    /// Config snapshot used to price inter-chip gathers.
    cfg: TpuConfig,
    /// The inter-chip fabric pricing this pool's gathers. Seeded from
    /// the primary device's configured topology (flat by default), so
    /// a chip's on-chip interconnect and the pool's inter-chip fabric
    /// can differ (see [`DevicePool::with_topology`]).
    topology: Topology,
    timeline: OrderedMutex<PoolTimeline>,
    /// Installed fault plan + transient draw counter. `None` (the
    /// default) keeps dispatch on the exact pre-fault code path.
    fault: OrderedMutex<FaultState>,
    /// Quarantined chips and the fault/retry/quarantine counters.
    quarantine: OrderedMutex<QuarantineState>,
    /// Lock-free fast-path flag mirroring `fault.plan.is_some()`, so
    /// the no-plan hot path never touches the fault lock.
    faults_enabled: AtomicBool,
}

impl DevicePool {
    /// Creates a pool of `n_devices` chips, each configured as `cfg`,
    /// with the default [`ShardStrategy::CostAware`] planner.
    /// `n_devices` is clamped to ≥ 1.
    pub fn new(cfg: TpuConfig, n_devices: usize) -> Self {
        Self::from_devices(
            (0..n_devices.max(1))
                .map(|_| SharedDevice::new(cfg.clone()))
                .collect(),
        )
    }

    /// Creates a pool of `n_devices` chips overriding each chip's core
    /// count — the multi-chip analogue of [`TpuDevice::with_cores`].
    pub fn with_cores(cfg: TpuConfig, n_devices: usize, cores_per_device: usize) -> Self {
        Self::from_devices(
            (0..n_devices.max(1))
                .map(|_| {
                    SharedDevice::from_device(TpuDevice::with_cores(cfg.clone(), cores_per_device))
                })
                .collect(),
        )
    }

    /// Wraps existing device handles into a pool. Device 0 is the
    /// *primary* device: non-sharded kernels run there and its
    /// configuration prices the inter-chip gathers.
    ///
    /// # Panics
    ///
    /// Panics when `devices` is empty — a pool needs at least one
    /// chip.
    pub fn from_devices(devices: Vec<SharedDevice>) -> Self {
        assert!(
            !devices.is_empty(),
            "a DevicePool needs at least one device"
        );
        let cfg = devices[0].config();
        let topology = cfg.topology;
        DevicePool {
            devices,
            strategy: ShardStrategy::default(),
            cfg,
            topology,
            timeline: OrderedMutex::new(&TPU_POOL, PoolTimeline::default()),
            fault: OrderedMutex::new(&TPU_FAULT, FaultState::default()),
            quarantine: OrderedMutex::new(&TPU_QUARANTINE, QuarantineState::default()),
            faults_enabled: AtomicBool::new(false),
        }
    }

    /// Replaces the shard-placement strategy (builder style).
    pub fn with_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the inter-chip fabric pricing this pool's gathers
    /// (builder style). Each chip's on-chip collectives keep pricing
    /// through its own configured topology — this only reshapes the
    /// links *between* chips.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Installs a fault plan (builder style). See
    /// [`DevicePool::install_fault_plan`].
    pub fn with_fault_plan(self, plan: FaultPlan) -> Self {
        self.install_fault_plan(plan);
        self
    }

    /// Installs a seeded [`FaultPlan`]: from the next flight on,
    /// dispatch consults the plan for fail-stops, transient shard
    /// faults and link faults, retries lost lanes under the plan's
    /// budget, and quarantines faulted chips. Replacing a plan resets
    /// the transient draw counter (a fresh schedule replays from its
    /// start) but keeps quarantine state and counters.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        {
            let mut f = self.fault.lock_recover();
            f.plan = Some(plan);
            f.draws = 0;
        }
        self.faults_enabled.store(true, Ordering::Release);
    }

    /// Removes the fault plan and releases every quarantined chip:
    /// dispatch returns to the exact pre-fault code path (bit-identical
    /// timing). Counters are kept — they describe what really
    /// happened — and clear on [`DevicePool::reset`].
    pub fn clear_fault_plan(&self) {
        self.faults_enabled.store(false, Ordering::Release);
        {
            let mut f = self.fault.lock_recover();
            f.plan = None;
            f.draws = 0;
        }
        self.quarantine.lock_recover().entries.clear();
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if !self.faults_enabled.load(Ordering::Acquire) {
            return None;
        }
        self.fault.lock_recover().plan.clone()
    }

    /// The fault layer's counters: faults injected, retries, re-plans,
    /// quarantine traffic. All zero until a plan injects something.
    pub fn fault_stats(&self) -> FaultStats {
        self.quarantine.lock_recover().stats
    }

    /// Number of chips currently able to take shards: not quarantined
    /// and not past a scheduled fail-stop. Equals
    /// [`DevicePool::num_devices`] with no plan installed.
    pub fn healthy_devices(&self) -> usize {
        match self.fault_plan() {
            None => self.devices.len(),
            Some(fp) => {
                let now = self.wall_seconds();
                let quarantined = self.quarantined_set();
                (0..self.devices.len())
                    .filter(|&d| !quarantined[d] && !fp.chip_dead(d, now))
                    .count()
            }
        }
    }

    /// Healthy chips as a fraction of the pool — the serving layer's
    /// capacity multiplier under degradation. 1.0 with no plan.
    pub fn healthy_fraction(&self) -> f64 {
        self.healthy_devices() as f64 / self.devices.len() as f64
    }

    /// Pool indices of the chips shards may target right now, primary
    /// order. Falls back to the primary device when everything is
    /// quarantined or dead (the pool still *tries* — attempts on dead
    /// chips fail and exhaust the retry budget as a typed error).
    pub fn healthy_device_indices(&self) -> Vec<usize> {
        match self.fault_plan() {
            None => (0..self.devices.len()).collect(),
            Some(fp) => {
                let now = self.wall_seconds();
                let quarantined = self.quarantined_set();
                let healthy: Vec<usize> = (0..self.devices.len())
                    .filter(|&d| !quarantined[d] && !fp.chip_dead(d, now))
                    .collect();
                if healthy.is_empty() {
                    vec![0]
                } else {
                    healthy
                }
            }
        }
    }

    /// The pool's fabric with every link fault scheduled at or before
    /// the current merged time applied — what gathers and fan-out
    /// planning should price against. The configured topology itself
    /// with no plan installed.
    pub fn effective_topology(&self) -> Topology {
        match self.fault_plan() {
            None => self.topology,
            Some(fp) => fp.mask_topology(self.topology, self.wall_seconds()),
        }
    }

    /// The shard-placement strategy in use.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The inter-chip fabric pricing this pool's gathers.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Cost in seconds of one inter-chip gather in which each of
    /// `participants` chips contributes `bytes`, priced on this
    /// pool's fabric. On the default flat crossbar this is exactly
    /// [`TpuConfig::cross_replica_cost_s`] for any `participants ≥ 2`.
    pub fn gather_cost_s(&self, bytes: usize, participants: usize) -> f64 {
        if self.faults_enabled.load(Ordering::Acquire) {
            return self
                .effective_topology()
                .gather_cost_s(&self.cfg, bytes, participants);
        }
        self.topology.gather_cost_s(&self.cfg, bytes, participants)
    }

    /// Number of chips in the pool.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// All device handles, primary first.
    pub fn devices(&self) -> &[SharedDevice] {
        &self.devices
    }

    /// The primary device (device 0): non-sharded kernels run here.
    pub fn primary(&self) -> &SharedDevice {
        &self.devices[0]
    }

    /// One device handle.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_devices()`.
    pub fn device(&self, i: usize) -> &SharedDevice {
        &self.devices[i]
    }

    /// The merged simulated wall clock, seconds: every sharded
    /// execution contributes its slowest chip's delta plus the
    /// inter-chip gather, and [`DevicePool::advance_external`]
    /// contributions (non-sharded kernels on the primary device) add
    /// directly.
    pub fn wall_seconds(&self) -> f64 {
        self.lock_timeline().wall_s
    }

    /// Accumulated inter-chip gather time, seconds.
    pub fn gather_seconds(&self) -> f64 {
        self.lock_timeline().gather_s
    }

    /// Number of executions that fanned out to more than one chip.
    pub fn sharded_flights(&self) -> u64 {
        self.lock_timeline().sharded_flights
    }

    /// Total simulated energy across every chip, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.devices.iter().map(SharedDevice::energy_pj).sum()
    }

    /// Zeroes every chip's counters and the merged timeline, empties
    /// the quarantine and the fault counters, and rewinds the fault
    /// plan's transient draw stream (the plan itself stays installed —
    /// a reset replays the same schedule from its start).
    pub fn reset(&self) {
        for d in &self.devices {
            d.reset();
        }
        *self.lock_timeline() = PoolTimeline::default();
        self.fault.lock_recover().draws = 0;
        *self.quarantine.lock_recover() = QuarantineState::default();
    }

    /// Merges externally-measured simulated seconds into the pool
    /// timeline — used for kernels that run on the primary device
    /// outside [`DevicePool::run_sharded`], so one clock stays
    /// coherent across sharded and non-sharded work.
    pub fn advance_external(&self, seconds: f64) {
        if seconds > 0.0 {
            self.lock_timeline().wall_s += seconds;
        }
    }

    /// Deep copy: every chip is cloned into an independent simulator
    /// and the timeline snapshot is carried over. The clone shares no
    /// state with `self`.
    pub fn deep_clone(&self) -> Self {
        // Snapshot each guarded state in its own statement: a struct
        // literal keeps every temporary guard alive to the end of the
        // expression, which would nest tpu::pool over the lower-ranked
        // fault/quarantine locks.
        let fault = self.fault.lock_recover().clone();
        let quarantine = self.quarantine.lock_recover().clone();
        let timeline = *self.lock_timeline();
        DevicePool {
            devices: self
                .devices
                .iter()
                .map(|d| SharedDevice::from_device(d.with(|dev| dev.clone())))
                .collect(),
            strategy: self.strategy,
            cfg: self.cfg.clone(),
            topology: self.topology,
            timeline: OrderedMutex::new(&TPU_POOL, timeline),
            fault: OrderedMutex::new(&TPU_FAULT, fault),
            quarantine: OrderedMutex::new(&TPU_QUARANTINE, quarantine),
            faults_enabled: AtomicBool::new(self.faults_enabled.load(Ordering::Acquire)),
        }
    }

    /// Executes `work` sharded across the pool's chips and returns
    /// the results in lane order, together with the execution's exact
    /// contribution to the merged timeline ([`ShardedRun::seconds`]).
    ///
    /// `lane` describes each item's relative compute cost (consumed
    /// by the planner) and gather payload; `shard` runs one device's
    /// lanes — it receives the device handle and its items in lane
    /// order and must return one result per item **plus the simulated
    /// seconds it charged its chip**, measured atomically under the
    /// device lock (use [`SharedDevice::timed`]). Shards execute
    /// concurrently on scoped host threads, one per occupied chip.
    ///
    /// Accounting: the merged timeline advances by the slowest
    /// shard's self-reported charge (chips run concurrently) plus —
    /// when more than one chip was occupied — one inter-chip gather
    /// priced at [`DevicePool::gather_cost_s`] over the largest
    /// single lane's gather payload and the occupied chip count (the
    /// same per-shard parallel-links convention as
    /// [`crate::TpuDevice::cross_replica_sum`], hierarchical on a
    /// torus fabric). Because every shard
    /// measures its own charge under its device lock, concurrent
    /// flights and concurrent [`DevicePool::advance_external`]
    /// charges never pollute each other's deltas, and the timeline
    /// lock is only held for the final O(1) merge — never across
    /// shard execution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WorkerPanicked`] when any shard
    /// panicked (the pool recovers: devices are unwedged and the next
    /// execution serves normally), the first shard error in device
    /// order otherwise, and [`TensorError::DataLength`] when a shard
    /// returns the wrong number of results. A failed flight merges
    /// **nothing** into the pool timeline — the partial charges of
    /// surviving shards remain on their chips' own clocks only, so
    /// the merged serving clock never bills undelivered work.
    pub fn run_sharded<W, R>(
        &self,
        work: Vec<W>,
        lane: impl Fn(&W) -> LaneCost,
        shard: impl Fn(&SharedDevice, Vec<W>) -> ShardOutcome<R> + Sync,
    ) -> Result<ShardedRun<R>>
    where
        W: Send + Clone,
        R: Send,
    {
        let lanes: Vec<LaneCost> = work.iter().map(&lane).collect();
        let plan = ShardPlan::plan_on(&lanes, self.devices.len(), self.strategy, &self.topology);
        let gather_bytes = plan.gather_shard_bytes(&lanes);
        self.run_planned(&plan, gather_bytes, work, shard)
    }

    /// Executes `work` under a [`ShardPlan`] the caller already
    /// computed — e.g. while deciding whether fanning out is worth it
    /// — avoiding a second planning pass. `gather_bytes` prices the
    /// inter-chip gather (normally
    /// [`ShardPlan::gather_shard_bytes`]). Execution, accounting and
    /// error semantics are exactly [`DevicePool::run_sharded`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when the plan does not
    /// cover this pool's devices and every lane of `work` exactly
    /// once, plus every error [`DevicePool::run_sharded`] can return.
    pub fn run_planned<W, R>(
        &self,
        plan: &ShardPlan,
        gather_bytes: usize,
        work: Vec<W>,
        shard: impl Fn(&SharedDevice, Vec<W>) -> ShardOutcome<R> + Sync,
    ) -> Result<ShardedRun<R>>
    where
        W: Send + Clone,
        R: Send,
    {
        if plan.assignments().len() != self.devices.len() {
            return Err(TensorError::DataLength {
                expected: self.devices.len(),
                actual: plan.assignments().len(),
            });
        }
        let mut placed = vec![false; work.len()];
        let mut placements = 0usize;
        for &i in plan.assignments().iter().flatten() {
            if i >= work.len() || placed[i] {
                return Err(TensorError::DataLength {
                    expected: work.len(),
                    actual: i,
                });
            }
            placed[i] = true;
            placements += 1;
        }
        if placements != work.len() {
            return Err(TensorError::DataLength {
                expected: work.len(),
                actual: placements,
            });
        }
        if work.is_empty() {
            return Ok(ShardedRun {
                results: Vec::new(),
                seconds: 0.0,
            });
        }
        // Dispatch forks exactly here: with no fault plan installed
        // the pool runs its pre-fault path, untouched — bit-identical
        // timing and results, pinned by property tests. With a plan,
        // the fault-aware path injects, quarantines and retries.
        match self.fault_plan() {
            None => self.run_planned_healthy(plan, gather_bytes, work, &shard),
            Some(fp) => self.run_planned_faulted(&fp, plan, gather_bytes, work, &shard),
        }
    }

    /// The pre-fault execution path, byte-for-byte the pool's original
    /// dispatch: bin, execute concurrently, merge slowest + gather on
    /// success only. Validation already ran in
    /// [`DevicePool::run_planned`].
    fn run_planned_healthy<W, R>(
        &self,
        plan: &ShardPlan,
        gather_bytes: usize,
        work: Vec<W>,
        shard: &(impl Fn(&SharedDevice, Vec<W>) -> ShardOutcome<R> + Sync),
    ) -> Result<ShardedRun<R>>
    where
        W: Send,
        R: Send,
    {
        // Bin the work per device. `lane_maps[s]` remembers which
        // lanes shard `s` carries so results reassemble in lane order.
        let mut slots: Vec<Option<W>> = work.into_iter().map(Some).collect();
        let total = slots.len();
        let mut lane_maps: Vec<&[usize]> = Vec::new();
        let mut shard_work: Vec<(usize, Vec<W>)> = Vec::new();
        for (d, assigned) in plan.assignments().iter().enumerate() {
            if assigned.is_empty() {
                continue;
            }
            lane_maps.push(assigned);
            shard_work.push((
                d,
                assigned
                    .iter()
                    .map(|&i| slots[i].take().expect("each lane binned exactly once"))
                    .collect(),
            ));
        }
        let n_shards = shard_work.len();

        let mut outcomes: Vec<Option<std::thread::Result<ShardOutcome<R>>>> =
            (0..n_shards).map(|_| None).collect();
        if n_shards == 1 {
            // One occupied chip: no fan-out threads, no gather.
            let (d, items) = shard_work.pop().expect("one shard");
            outcomes[0] = Some(catch_unwind(AssertUnwindSafe(|| {
                shard(&self.devices[d], items)
            })));
        } else {
            // Shards run on the shared host pool's *blocking* lane:
            // each holds its chip's lock for the whole shard (and may
            // contend with concurrent flights), so every shard is
            // guaranteed a persistent crew thread instead of queueing
            // behind bounded compute workers.
            xai_parallel::global().scope_blocking(|scope| {
                for (slot, (d, items)) in outcomes.iter_mut().zip(shard_work) {
                    let device = &self.devices[d];
                    let shard = &shard;
                    scope.spawn(move || {
                        // A panicking shard is caught here so the
                        // scope's implicit join never re-raises: the
                        // pool reports WorkerPanicked instead of
                        // tearing down every sibling shard's caller.
                        *slot = Some(catch_unwind(AssertUnwindSafe(|| shard(device, items))));
                    });
                }
            });
        }

        let mut per_shard: Vec<Vec<R>> = Vec::with_capacity(n_shards);
        let mut slowest = 0.0f64;
        let mut panicked = false;
        let mut first_err: Option<TensorError> = None;
        for (outcome, assigned) in outcomes.into_iter().zip(&lane_maps) {
            match outcome.expect("scope joined every shard") {
                Ok(Ok((results, seconds))) => {
                    if results.len() != assigned.len() && first_err.is_none() {
                        first_err = Some(TensorError::DataLength {
                            expected: assigned.len(),
                            actual: results.len(),
                        });
                    }
                    slowest = slowest.max(seconds);
                    per_shard.push(results);
                }
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    per_shard.push(Vec::new());
                }
                Err(_) => {
                    panicked = true;
                    per_shard.push(Vec::new());
                }
            }
        }

        // Only completed flights merge into the serving timeline: a
        // panicked or errored flight returns nothing to its callers,
        // so folding its partial-shard charges (or a gather that never
        // happened) into the merged clock would bill work the flight
        // did not deliver — and bill it *again* when the caller
        // retries. The partial charges stay visible on each chip's own
        // wall clock and energy counters; `reset` clears those too.
        if panicked {
            return Err(TensorError::WorkerPanicked {
                op: "device pool shard",
            });
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let gather_s = if n_shards > 1 {
            // Hierarchical on a torus, hop- and pressure-scaled on a
            // ring, and exactly the seed `cross_replica_cost_s` on
            // the default flat crossbar.
            self.gather_cost_s(gather_bytes, n_shards)
        } else {
            0.0
        };
        let seconds = slowest + gather_s;
        {
            let mut timeline = self.lock_timeline();
            timeline.wall_s += seconds;
            timeline.gather_s += gather_s;
            if n_shards > 1 {
                timeline.sharded_flights += 1;
            }
        }

        let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
        for (assigned, results) in lane_maps.iter().zip(per_shard) {
            for (&i, r) in assigned.iter().zip(results) {
                out[i] = Some(r);
            }
        }
        Ok(ShardedRun {
            results: out
                .into_iter()
                .map(|r| r.expect("every lane produced a result"))
                .collect(),
            seconds,
        })
    }

    /// The fault-aware execution path: consults the installed
    /// [`FaultPlan`] at dispatch, injects scheduled fail-stops and
    /// seeded transient faults, quarantines faulted chips, re-plans
    /// lost lanes over the healthy survivors and retries them under
    /// the plan's bounded budget with exponential simulated backoff.
    ///
    /// Accounting: the flight's merged contribution is the sum of
    /// every round's slowest-shard charge (a transiently-faulted
    /// shard really ran — its chip charged real time before the
    /// results were lost), plus the simulated backoffs, plus one
    /// gather over the *distinct contributing* chips (those holding
    /// final results), priced on the link-fault-masked fabric.
    /// Numeric results are pure functions of the lanes, so a retried
    /// flight is bit-identical to its fault-free run — only the
    /// timeline pays. A flight that fails outright (real shard error,
    /// panic, or budget exhaustion) merges nothing, exactly like the
    /// healthy path.
    fn run_planned_faulted<W, R>(
        &self,
        fp: &FaultPlan,
        plan: &ShardPlan,
        gather_bytes: usize,
        work: Vec<W>,
        shard: &(impl Fn(&SharedDevice, Vec<W>) -> ShardOutcome<R> + Sync),
    ) -> Result<ShardedRun<R>>
    where
        W: Send + Clone,
        R: Send,
    {
        let total = work.len();
        let start_s = self.wall_seconds();
        self.apply_fault_schedule(fp, start_s);

        // Lanes stay in their slots until a shard delivers them: a
        // transient fault discards results, so the items must survive
        // for the retry (hence `W: Clone`).
        let mut slots: Vec<Option<W>> = work.into_iter().map(Some).collect();
        let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
        let mut contributed = vec![false; self.devices.len()];
        let mut compute_s = 0.0f64; // Σ per-round slowest-shard charges
        let mut backoff_s = 0.0f64; // Σ simulated retry backoffs

        // Initial placement: the caller's plan, with lanes that landed
        // on quarantined/dead chips re-planned round-robin onto the
        // healthy survivors (lane costs are unknown at this level).
        let mut assignment: Vec<Vec<usize>> = plan.assignments().to_vec();
        if self.evict_unhealthy(fp, start_s, &mut assignment) {
            self.with_stats(|s| s.replans += 1);
        }

        let mut round = 0usize;
        loop {
            let now = start_s + compute_s + backoff_s;
            // Bin the still-pending lanes; chips dead by schedule fail
            // their shards with zero charge (they no longer execute).
            let mut live_devices: Vec<usize> = Vec::new();
            let mut live_maps: Vec<Vec<usize>> = Vec::new();
            let mut live_work: Vec<(usize, Vec<W>)> = Vec::new();
            let mut pending_total = 0usize;
            for (d, assigned) in assignment.iter().enumerate() {
                let pending: Vec<usize> = assigned
                    .iter()
                    .copied()
                    .filter(|&i| slots[i].is_some())
                    .collect();
                if pending.is_empty() {
                    continue;
                }
                pending_total += pending.len();
                if fp.chip_dead(d, now) {
                    self.quarantine_chip(d, f64::INFINITY, true);
                    continue;
                }
                live_work.push((
                    d,
                    pending
                        .iter()
                        .map(|&i| slots[i].clone().expect("pending lane present"))
                        .collect(),
                ));
                live_devices.push(d);
                live_maps.push(pending);
            }
            if pending_total == 0 {
                break;
            }

            // One transient draw per live shard, device-index order.
            let faults = self.consume_draws(fp, live_work.len());
            let outcomes = self.execute_shards(live_work, shard);

            let mut round_slowest = 0.0f64;
            for (((outcome, pending), &d), &faulted) in outcomes
                .into_iter()
                .zip(&live_maps)
                .zip(&live_devices)
                .zip(&faults)
            {
                match outcome {
                    Err(_) => {
                        // A real panic is not an injected fault: fail
                        // the flight and merge nothing, exactly as the
                        // healthy path would.
                        return Err(TensorError::WorkerPanicked {
                            op: "device pool shard",
                        });
                    }
                    Ok(Err(e)) => return Err(e),
                    Ok(Ok((results, seconds))) => {
                        if results.len() != pending.len() {
                            return Err(TensorError::DataLength {
                                expected: pending.len(),
                                actual: results.len(),
                            });
                        }
                        round_slowest = round_slowest.max(seconds);
                        if faulted {
                            // The chip really ran and charged its own
                            // clock; the answers were lost in transit.
                            self.with_stats(|s| s.transient_faults += 1);
                            self.quarantine_chip(d, now + fp.cooldown_s(), false);
                        } else {
                            contributed[d] = true;
                            for (&i, r) in pending.iter().zip(results) {
                                out[i] = Some(r);
                                slots[i] = None;
                            }
                        }
                    }
                }
            }
            compute_s += round_slowest;

            let lost: Vec<usize> = (0..total).filter(|&i| slots[i].is_some()).collect();
            if lost.is_empty() {
                break;
            }
            if round >= fp.retry_budget() {
                self.with_stats(|s| s.budget_exhausted += 1);
                return Err(TensorError::FaultBudgetExhausted {
                    op: "device pool shard",
                    attempts: round + 1,
                });
            }
            round += 1;
            self.with_stats(|s| s.retries += 1);
            backoff_s += fp.backoff_s() * (1u64 << (round - 1).min(62)) as f64;
            // Re-plan: the lost lanes go round-robin over the healthy
            // survivors (falling back to the primary when none are
            // left — those attempts then fail until the budget types
            // out, never panicking).
            let targets = self.retry_targets(fp, start_s + compute_s + backoff_s);
            assignment = vec![Vec::new(); self.devices.len()];
            for (j, &i) in lost.iter().enumerate() {
                assignment[targets[j % targets.len()]].push(i);
            }
            self.with_stats(|s| s.replans += 1);
        }

        let distinct = contributed.iter().filter(|&&c| c).count();
        let gather_s = if distinct > 1 {
            fp.mask_topology(self.topology, start_s + compute_s + backoff_s)
                .gather_cost_s(&self.cfg, gather_bytes, distinct)
        } else {
            0.0
        };
        let seconds = compute_s + backoff_s + gather_s;
        {
            let mut timeline = self.lock_timeline();
            timeline.wall_s += seconds;
            timeline.gather_s += gather_s;
            if distinct > 1 {
                timeline.sharded_flights += 1;
            }
        }
        Ok(ShardedRun {
            results: out
                .into_iter()
                .map(|r| r.expect("every lane produced a result"))
                .collect(),
            seconds,
        })
    }

    /// Runs the binned shards concurrently (one crew thread per
    /// occupied chip; a single shard runs inline) and returns the
    /// caught outcomes in bin order.
    fn execute_shards<W, R>(
        &self,
        mut shard_work: Vec<(usize, Vec<W>)>,
        shard: &(impl Fn(&SharedDevice, Vec<W>) -> ShardOutcome<R> + Sync),
    ) -> Vec<std::thread::Result<ShardOutcome<R>>>
    where
        W: Send,
        R: Send,
    {
        let n_shards = shard_work.len();
        let mut outcomes: Vec<Option<std::thread::Result<ShardOutcome<R>>>> =
            (0..n_shards).map(|_| None).collect();
        if n_shards == 1 {
            let (d, items) = shard_work.pop().expect("one shard");
            outcomes[0] = Some(catch_unwind(AssertUnwindSafe(|| {
                shard(&self.devices[d], items)
            })));
        } else if n_shards > 1 {
            xai_parallel::global().scope_blocking(|scope| {
                for (slot, (d, items)) in outcomes.iter_mut().zip(shard_work) {
                    let device = &self.devices[d];
                    scope.spawn(move || {
                        *slot = Some(catch_unwind(AssertUnwindSafe(|| shard(device, items))));
                    });
                }
            });
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("scope joined every shard"))
            .collect()
    }

    /// Probes expired quarantine entries (fail-stopped chips
    /// re-confirm their death and stay; transiently-faulted chips
    /// re-admit) and quarantines chips whose scheduled fail-stop has
    /// come due.
    fn apply_fault_schedule(&self, fp: &FaultPlan, now_s: f64) {
        {
            let mut guard = self.quarantine.lock_recover();
            let state = &mut *guard;
            let mut kept = Vec::with_capacity(state.entries.len());
            for e in state.entries.drain(..) {
                if e.permanent || e.until_s > now_s {
                    kept.push(e);
                    continue;
                }
                state.stats.probes += 1;
                if fp.chip_dead(e.chip, now_s) {
                    kept.push(QuarantineEntry {
                        permanent: true,
                        ..e
                    });
                } else {
                    state.stats.readmissions += 1;
                }
            }
            state.entries = kept;
        }
        for fs in fp.fail_stops() {
            if fs.at_s <= now_s {
                self.quarantine_chip(fs.chip, f64::INFINITY, true);
            }
        }
    }

    /// Quarantines `chip` (idempotent). Transient quarantine never
    /// takes the last healthy chip — with everything else gone the
    /// pool keeps trying on it. A fail-stopped chip is recorded dead
    /// regardless: serving then degenerates to typed budget errors.
    fn quarantine_chip(&self, chip: usize, until_s: f64, permanent: bool) {
        if chip >= self.devices.len() {
            return;
        }
        let mut guard = self.quarantine.lock_recover();
        let state = &mut *guard;
        if let Some(e) = state.entries.iter_mut().find(|e| e.chip == chip) {
            if permanent && !e.permanent {
                e.permanent = true;
                state.stats.fail_stops += 1;
            }
            return;
        }
        if !permanent && state.entries.len() + 1 >= self.devices.len() {
            return;
        }
        state.entries.push(QuarantineEntry {
            chip,
            until_s,
            permanent,
        });
        state.stats.quarantines += 1;
        if permanent {
            state.stats.fail_stops += 1;
        }
    }

    /// Chips a retry may target at `now_s`: not quarantined, not dead.
    /// Falls back to the primary so the retry loop always has
    /// somewhere to place lanes.
    fn retry_targets(&self, fp: &FaultPlan, now_s: f64) -> Vec<usize> {
        let quarantined = self.quarantined_set();
        let targets: Vec<usize> = (0..self.devices.len())
            .filter(|&d| !quarantined[d] && !fp.chip_dead(d, now_s))
            .collect();
        if targets.is_empty() {
            vec![0]
        } else {
            targets
        }
    }

    /// Moves lanes assigned to quarantined or dead chips round-robin
    /// onto the healthy survivors; reports whether anything moved.
    fn evict_unhealthy(&self, fp: &FaultPlan, now_s: f64, assignment: &mut [Vec<usize>]) -> bool {
        let quarantined = self.quarantined_set();
        let mut displaced: Vec<usize> = Vec::new();
        for (d, assigned) in assignment.iter_mut().enumerate() {
            if (quarantined[d] || fp.chip_dead(d, now_s)) && !assigned.is_empty() {
                displaced.append(assigned);
            }
        }
        if displaced.is_empty() {
            return false;
        }
        let targets = self.retry_targets(fp, now_s);
        for (j, i) in displaced.into_iter().enumerate() {
            assignment[targets[j % targets.len()]].push(i);
        }
        true
    }

    /// Per-device quarantine flags.
    fn quarantined_set(&self) -> Vec<bool> {
        let guard = self.quarantine.lock_recover();
        let mut set = vec![false; self.devices.len()];
        for e in &guard.entries {
            if e.chip < set.len() {
                set[e.chip] = true;
            }
        }
        set
    }

    /// Applies `f` to the fault counters under the quarantine lock.
    fn with_stats(&self, f: impl FnOnce(&mut FaultStats)) {
        f(&mut self.quarantine.lock_recover().stats);
    }

    /// Consumes `n` draws from the seeded transient stream, one per
    /// live shard in device-index order.
    fn consume_draws(&self, fp: &FaultPlan, n: usize) -> Vec<bool> {
        let mut guard = self.fault.lock_recover();
        (0..n)
            .map(|_| {
                let hit = fp.draw_faults(guard.draws);
                guard.draws += 1;
                hit
            })
            .collect()
    }

    fn lock_timeline(&self) -> OrderedMutexGuard<'_, PoolTimeline> {
        // Same policy as SharedDevice: the timeline is a monotone
        // ledger, so lock_recover rather than wedging the pool.
        self.timeline.lock_recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use xai_tensor::Matrix;

    fn lane(compute: f64) -> LaneCost {
        LaneCost {
            compute,
            gather_bytes: 128,
        }
    }

    fn shard_mat(v: f64) -> Matrix<f64> {
        Matrix::filled(4, 4, v).unwrap()
    }

    fn matmul_shard(
        device: &SharedDevice,
        items: Vec<Matrix<f64>>,
    ) -> Result<(Vec<Matrix<f64>>, f64)> {
        device.timed(|d| d.run_phase(items, |core, s| core.matmul(&s, &s)))
    }

    /// A shard for pure-data tests: no device work, zero charge.
    fn uncharged<R>(v: Vec<R>) -> Result<(Vec<R>, f64)> {
        Ok((v, 0.0))
    }

    #[test]
    fn round_robin_interleaves() {
        let lanes: Vec<LaneCost> = (0..5).map(|_| lane(1.0)).collect();
        let plan = ShardPlan::plan(&lanes, 2, ShardStrategy::RoundRobin);
        assert_eq!(plan.assignments(), &[vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(plan.occupied_devices(), 2);
    }

    #[test]
    fn cost_aware_balances_heterogeneous_lanes() {
        let lanes: Vec<LaneCost> = [8.0, 1.0, 1.0, 1.0, 1.0, 4.0]
            .iter()
            .map(|&c| lane(c))
            .collect();
        let plan = ShardPlan::plan(&lanes, 2, ShardStrategy::CostAware);
        // LPT: 8 | 4, then the 1s fill the lighter side.
        let load = |d: usize| {
            plan.assignments()[d]
                .iter()
                .map(|&i| lanes[i].compute)
                .sum::<f64>()
        };
        assert_eq!((load(0) - load(1)).abs(), 0.0);
        // Round-robin would be lopsided here: {8,1,1}=10 vs {1,1,4}=6.
        let rr = ShardPlan::plan(&lanes, 2, ShardStrategy::RoundRobin);
        let rr_load = |d: usize| {
            rr.assignments()[d]
                .iter()
                .map(|&i| lanes[i].compute)
                .sum::<f64>()
        };
        assert!((rr_load(0) - rr_load(1)).abs() > (load(0) - load(1)).abs());
    }

    #[test]
    fn plan_is_deterministic_and_exhaustive() {
        let lanes: Vec<LaneCost> = (0..17).map(|i| lane((i % 5) as f64 + 1.0)).collect();
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostAware] {
            let a = ShardPlan::plan(&lanes, 4, strategy);
            let b = ShardPlan::plan(&lanes, 4, strategy);
            assert_eq!(a, b, "{strategy:?} must be deterministic");
            let mut seen: Vec<usize> = a.assignments().iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..17).collect::<Vec<_>>(), "every lane placed once");
        }
    }

    #[test]
    fn gather_shard_bytes_is_largest_single_lane() {
        let lanes = vec![
            LaneCost {
                compute: 1.0,
                gather_bytes: 100,
            },
            LaneCost {
                compute: 1.0,
                gather_bytes: 300,
            },
            LaneCost {
                compute: 1.0,
                gather_bytes: 200,
            },
        ];
        let plan = ShardPlan::plan(&lanes, 2, ShardStrategy::RoundRobin);
        // Per-shard pricing: lanes ship over parallel links, so the
        // collective costs one (largest) shard, as in
        // TpuDevice::cross_replica_sum.
        assert_eq!(plan.gather_shard_bytes(&lanes), 300);
    }

    #[test]
    fn sharded_results_arrive_in_lane_order() {
        let pool = DevicePool::new(TpuConfig::small_test(), 3);
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::CostAware] {
            let pool = pool.deep_clone().with_strategy(strategy);
            let run = pool
                .run_sharded(
                    (0..7u64).collect(),
                    |_| lane(1.0),
                    |_, items| uncharged(items.into_iter().map(|v| v * 10).collect()),
                )
                .unwrap();
            assert_eq!(run.results, vec![0, 10, 20, 30, 40, 50, 60], "{strategy:?}");
        }
    }

    #[test]
    fn empty_work_is_a_noop() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2);
        let run = pool
            .run_sharded(vec![], |_: &u64| lane(1.0), |_, v: Vec<u64>| uncharged(v))
            .unwrap();
        assert!(run.results.is_empty());
        assert_eq!(run.seconds, 0.0);
        assert_eq!(pool.wall_seconds(), 0.0);
    }

    #[test]
    fn pool_of_four_beats_one_device_on_oversubscribed_batch() {
        // 8 equal matmul lanes on 1-core chips: one chip serialises
        // all 8, four chips run 2 each concurrently.
        let work = || -> Vec<Matrix<f64>> { (0..8).map(|_| shard_mat(0.5)).collect() };
        let single = DevicePool::with_cores(TpuConfig::small_test(), 1, 1);
        single
            .run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
            .unwrap();
        let pool = DevicePool::with_cores(TpuConfig::small_test(), 4, 1);
        pool.run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
            .unwrap();
        assert!(
            pool.wall_seconds() < single.wall_seconds(),
            "4 chips {} s must beat 1 chip {} s",
            pool.wall_seconds(),
            single.wall_seconds()
        );
        assert_eq!(pool.sharded_flights(), 1);
        assert_eq!(single.sharded_flights(), 0, "one chip cannot shard");
        assert!(pool.gather_seconds() > 0.0);
        assert_eq!(single.gather_seconds(), 0.0);
    }

    #[test]
    fn merged_timeline_is_slowest_chip_plus_gather() {
        let pool = DevicePool::with_cores(TpuConfig::small_test(), 2, 1);
        let run = pool
            .run_sharded(
                vec![shard_mat(1.0), shard_mat(2.0)],
                |m| lane(m.len() as f64),
                matmul_shard,
            )
            .unwrap();
        // Nothing else charged these fresh chips, so each chip's wall
        // clock equals its shard's self-reported delta.
        let slowest = pool
            .devices()
            .iter()
            .map(SharedDevice::wall_seconds)
            .fold(0.0f64, f64::max);
        let expect = slowest + pool.gather_seconds();
        assert!((pool.wall_seconds() - expect).abs() < 1e-15);
        assert!((run.seconds - expect).abs() < 1e-15);
    }

    #[test]
    fn single_device_pool_charges_no_gather() {
        let pool = DevicePool::new(TpuConfig::small_test(), 1);
        pool.run_sharded(
            vec![shard_mat(1.0), shard_mat(2.0)],
            |m| lane(m.len() as f64),
            matmul_shard,
        )
        .unwrap();
        assert!(pool.wall_seconds() > 0.0);
        assert_eq!(pool.gather_seconds(), 0.0);
        assert_eq!(pool.sharded_flights(), 0);
    }

    #[test]
    fn shard_errors_propagate_without_wedging() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2);
        let err = pool
            .run_sharded(
                vec![1u64, 2, 3, 4],
                |_| lane(1.0),
                |_, _| Err::<(Vec<u64>, f64), _>(TensorError::EmptyDimension),
            )
            .unwrap_err();
        assert_eq!(err, TensorError::EmptyDimension);
        // An errored flight merges nothing into the serving timeline.
        assert_eq!(pool.wall_seconds(), 0.0);
        // The pool still serves.
        let run = pool
            .run_sharded(vec![5u64, 6], |_| lane(1.0), |_, v: Vec<u64>| uncharged(v))
            .unwrap();
        assert_eq!(run.results, vec![5, 6]);
    }

    #[test]
    fn panicking_shard_reports_worker_panicked_and_pool_recovers() {
        let pool = DevicePool::new(TpuConfig::small_test(), 4);
        let err = pool
            .run_sharded(
                (0..8u64).collect(),
                |_| lane(1.0),
                |device, items| {
                    // Exactly the shard carrying lane 0 crashes, while
                    // holding the device lock — the worst case.
                    if items.contains(&0) {
                        device.with(|_| panic!("chip firmware crash"));
                    }
                    uncharged(items)
                },
            )
            .unwrap_err();
        assert!(matches!(err, TensorError::WorkerPanicked { .. }));
        // No wedged devices: every chip still serves, including the
        // one whose lock the panicking shard poisoned.
        let run = pool
            .run_sharded(
                (0..8u64).collect(),
                |_| lane(1.0),
                |device, items| {
                    let (_, dt) = device.timed(|d| {
                        d.run_phase(vec![shard_mat(0.5)], |core, s| core.matmul(&s, &s))
                    })?;
                    Ok((items, dt))
                },
            )
            .unwrap();
        assert_eq!(run.results, (0..8).collect::<Vec<_>>());
        assert!(run.seconds > 0.0);
    }

    /// A flight that fails with `WorkerPanicked` must leave the pool's
    /// accounting consistent: partial-shard charges stay on the chips'
    /// own clocks (the work physically ran and burned energy) but
    /// never leak into the merged serving timeline, and `reset`
    /// clears every chip — not just the primary.
    #[test]
    fn failed_flight_merges_no_partial_charges_into_the_timeline() {
        let pool = DevicePool::with_cores(TpuConfig::small_test(), 2, 1);
        let err = pool
            .run_sharded(
                vec![shard_mat(0.1), shard_mat(2.0)],
                |m| lane(m.len() as f64),
                |device, items| {
                    // Both shards charge real work under their chip
                    // lock; the shard whose product is large then
                    // crashes — after charging, the worst case for a
                    // timeline leak.
                    let (out, dt) =
                        device.timed(|d| d.run_phase(items, |core, s| core.matmul(&s, &s)))?;
                    if out.iter().any(|m| m[(0, 0)] > 1.0) {
                        device.with(|_| panic!("chip crash after charging its shard"));
                    }
                    Ok((out, dt))
                },
            )
            .unwrap_err();
        assert!(matches!(err, TensorError::WorkerPanicked { .. }));
        // The chips recorded the partial work they really did...
        assert!(pool.devices().iter().all(|d| d.wall_seconds() > 0.0));
        assert!(pool.energy_pj() > 0.0);
        // ...but none of it leaked into the merged serving timeline.
        assert_eq!(pool.wall_seconds(), 0.0);
        assert_eq!(pool.gather_seconds(), 0.0);
        assert_eq!(pool.sharded_flights(), 0);
        // reset() clears every chip, not just the primary.
        pool.reset();
        assert_eq!(pool.energy_pj(), 0.0);
        for d in pool.devices() {
            assert_eq!(d.wall_seconds(), 0.0);
            assert_eq!(d.energy_pj(), 0.0);
        }
    }

    #[test]
    fn wrong_shard_arity_is_an_error_not_a_hang() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2);
        let err = pool
            .run_sharded(
                vec![1u64, 2, 3],
                |_| lane(1.0),
                // Wrong arity, with a self-reported charge that must
                // be discarded along with the failed flight.
                |_, _| Ok((vec![7u64], 1.5)),
            )
            .unwrap_err();
        assert!(matches!(err, TensorError::DataLength { .. }));
        assert_eq!(pool.wall_seconds(), 0.0);
    }

    #[test]
    fn run_planned_rejects_inconsistent_plans_and_reuses_good_ones() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2);
        let lanes: Vec<LaneCost> = (0..3).map(|_| lane(1.0)).collect();
        // Plan computed for a different pool size.
        let wrong_devices = ShardPlan::plan(&lanes, 3, ShardStrategy::RoundRobin);
        let err = pool
            .run_planned(&wrong_devices, 0, vec![1u64, 2, 3], |_, v: Vec<u64>| {
                uncharged(v)
            })
            .unwrap_err();
        assert!(matches!(err, TensorError::DataLength { .. }));
        // Plan covering fewer lanes than the work carries.
        let fewer: Vec<LaneCost> = (0..2).map(|_| lane(1.0)).collect();
        let wrong_lanes = ShardPlan::plan(&fewer, 2, ShardStrategy::RoundRobin);
        let err = pool
            .run_planned(&wrong_lanes, 0, vec![1u64, 2, 3], |_, v: Vec<u64>| {
                uncharged(v)
            })
            .unwrap_err();
        assert!(matches!(err, TensorError::DataLength { .. }));
        assert_eq!(pool.wall_seconds(), 0.0, "rejected plans charge nothing");
        // A caller-reused matching plan executes identically.
        let plan = ShardPlan::plan(&lanes, 2, ShardStrategy::RoundRobin);
        let run = pool
            .run_planned(
                &plan,
                plan.gather_shard_bytes(&lanes),
                vec![1u64, 2, 3],
                |_, v: Vec<u64>| uncharged(v),
            )
            .unwrap();
        assert_eq!(run.results, vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_external_charges_do_not_double_count() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2);
        let run = pool
            .run_sharded(
                vec![1u64, 2],
                |_| lane(1.0),
                |device, items| {
                    // An unrelated kernel lands on this chip mid-flight
                    // and merges its own time via advance_external (as
                    // TpuAccel's non-transform kernels do). The flight
                    // must not absorb it: shards self-report only what
                    // they charged inside their timed region.
                    device.with(|d| d.charge_external_seconds(5.0));
                    pool.advance_external(5.0);
                    device.timed(|d| {
                        d.run_phase(vec![shard_mat(0.5)], |core, s| core.matmul(&s, &s))?;
                        Ok(items)
                    })
                },
            )
            .unwrap();
        // Two shards → 10.0 s of external charges, plus exactly the
        // flight's own contribution. Double counting would add the
        // 5.0 s external charges into the flight deltas again.
        let expect = 10.0 + run.seconds;
        assert!(
            (pool.wall_seconds() - expect).abs() < 1e-12,
            "wall {} must equal external 10.0 + flight {}",
            pool.wall_seconds(),
            run.seconds
        );
        assert!(run.seconds > 0.0 && run.seconds < 5.0);
    }

    #[test]
    fn advance_external_merges_into_timeline() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2);
        pool.advance_external(0.25);
        pool.advance_external(-1.0); // ignored
        assert_eq!(pool.wall_seconds(), 0.25);
        pool.reset();
        assert_eq!(pool.wall_seconds(), 0.0);
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2);
        pool.advance_external(1.0);
        let copy = pool.deep_clone();
        assert_eq!(copy.wall_seconds(), 1.0);
        copy.run_sharded(
            vec![shard_mat(1.0), shard_mat(2.0)],
            |m| lane(m.len() as f64),
            matmul_shard,
        )
        .unwrap();
        assert!(copy.wall_seconds() > 1.0);
        assert_eq!(pool.wall_seconds(), 1.0, "original untouched");
        assert!(!pool.primary().same_device(copy.primary()));
    }

    #[test]
    fn zero_devices_plans_for_one_device() {
        // Regression: `plan` must absorb a `devices == 0` caller bug
        // instead of indexing into an empty assignment table.
        let lanes: Vec<LaneCost> = (0..5).map(|i| lane(i as f64 + 1.0)).collect();
        for strategy in [
            ShardStrategy::RoundRobin,
            ShardStrategy::CostAware,
            ShardStrategy::TopologyAware,
        ] {
            let plan = ShardPlan::plan(&lanes, 0, strategy);
            assert_eq!(plan.assignments().len(), 1, "{strategy:?}");
            assert_eq!(plan.occupied_devices(), 1);
            let mut placed: Vec<usize> = plan.assignments()[0].clone();
            placed.sort_unstable();
            assert_eq!(placed, (0..5).collect::<Vec<_>>());
        }
        assert_eq!(ShardPlan::plan_width(&lanes, 0, 0).assignments().len(), 1);
        assert_eq!(
            ShardPlan::plan(&[], 0, ShardStrategy::CostAware).occupied_devices(),
            0
        );
    }

    #[test]
    fn pool_gather_prices_through_its_topology() {
        let cfg = TpuConfig::small_test();
        let flat = DevicePool::new(cfg.clone(), 4);
        let ring = DevicePool::new(cfg.clone(), 4).with_topology(Topology::ring());
        // Default fabric: exactly the seed charge.
        assert_eq!(
            flat.gather_cost_s(512, 4).to_bits(),
            cfg.cross_replica_cost_s(512).to_bits(),
        );
        assert!(ring.gather_cost_s(512, 4) > flat.gather_cost_s(512, 4));
        // The fabric survives a deep clone and shows in the merged
        // timeline: the same flight pays more reassembly on the ring.
        let work = || -> Vec<Matrix<f64>> { (0..4).map(|_| shard_mat(0.5)).collect() };
        let ring = ring.deep_clone();
        for pool in [&flat, &ring] {
            pool.run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
                .unwrap();
        }
        assert!(ring.gather_seconds() > flat.gather_seconds());
    }

    #[test]
    fn topology_aware_narrows_when_balance_allows() {
        // 20 equal lanes on 16 chips: the full-width LPT leaves four
        // chips with 2 lanes (makespan 2), so packing onto a 12-chip
        // (three-pod) prefix costs no compute time but shrinks the
        // gather's participant count.
        let lanes: Vec<LaneCost> = (0..20).map(|_| lane(1.0)).collect();
        let torus = Topology::torus(4);
        let plan = ShardPlan::plan_on(&lanes, 16, ShardStrategy::TopologyAware, &torus);
        assert_eq!(plan.occupied_devices(), 12);
        assert_eq!(plan.makespan(&lanes), 2.0);
        let full = ShardPlan::plan_on(&lanes, 16, ShardStrategy::CostAware, &torus);
        assert_eq!(full.makespan(&lanes), 2.0, "narrowing sacrificed nothing");
        // When every chip is needed to hold the makespan, the aware
        // plan uses them all.
        let heavy: Vec<LaneCost> = (0..16).map(|_| lane(1.0)).collect();
        let plan = ShardPlan::plan_on(&heavy, 16, ShardStrategy::TopologyAware, &torus);
        assert_eq!(plan.occupied_devices(), 16);
        // On a flat crossbar the strategy is exactly CostAware.
        let flat = Topology::flat();
        assert_eq!(
            ShardPlan::plan_on(&lanes, 16, ShardStrategy::TopologyAware, &flat),
            ShardPlan::plan_on(&lanes, 16, ShardStrategy::CostAware, &flat),
        );
    }

    #[test]
    fn cost_aware_beats_round_robin_on_skewed_lanes_over_a_ring() {
        // Skewed lane sizes laid out so round-robin piles the heavy
        // lanes onto the same chips: on a non-flat fabric both plans
        // pay the same ring gather, so the placement alone decides
        // the merged timeline.
        let skew = |i: usize| if i.is_multiple_of(4) { 16usize } else { 4 };
        let work = || -> Vec<Matrix<f64>> {
            (0..16)
                .map(|i| Matrix::filled(skew(i), skew(i), 0.5).unwrap())
                .collect()
        };
        let run = |strategy: ShardStrategy| -> f64 {
            let pool = DevicePool::with_cores(TpuConfig::small_test(), 4, 1)
                .with_strategy(strategy)
                .with_topology(Topology::ring());
            pool.run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
                .unwrap();
            pool.wall_seconds()
        };
        let rr = run(ShardStrategy::RoundRobin);
        let ca = run(ShardStrategy::CostAware);
        assert!(
            ca < rr,
            "cost-aware placement ({ca} s) must beat round-robin ({rr} s)"
        );
    }

    #[test]
    fn empty_fault_plan_changes_nothing_but_the_code_path() {
        // A plan with nothing scheduled must reproduce the healthy
        // path's merged timeline bit-for-bit (same makespan, same
        // gather, no backoff), and identical results.
        let work = || -> Vec<Matrix<f64>> { (0..8).map(|i| shard_mat(0.1 * i as f64)).collect() };
        let healthy = DevicePool::with_cores(TpuConfig::small_test(), 4, 1);
        let planned = DevicePool::with_cores(TpuConfig::small_test(), 4, 1)
            .with_fault_plan(FaultPlan::seeded(99));
        let a = healthy
            .run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
            .unwrap();
        let b = planned
            .run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
            .unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
        assert_eq!(
            healthy.wall_seconds().to_bits(),
            planned.wall_seconds().to_bits()
        );
        assert_eq!(healthy.gather_seconds(), planned.gather_seconds());
        assert_eq!(planned.fault_stats(), FaultStats::default());
        assert_eq!(planned.healthy_devices(), 4);
        assert_eq!(planned.healthy_fraction(), 1.0);
    }

    #[test]
    fn transient_fault_retries_to_bit_identical_results() {
        let work =
            || -> Vec<Matrix<f64>> { (0..4).map(|i| shard_mat(0.2 * (i + 1) as f64)).collect() };
        let healthy = DevicePool::with_cores(TpuConfig::small_test(), 2, 1);
        let reference = healthy
            .run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
            .unwrap();
        // Draw 0 = the first shard of the first flight: device 0
        // faults once, its lanes retry on the survivor.
        let faulted = DevicePool::with_cores(TpuConfig::small_test(), 2, 1)
            .with_fault_plan(FaultPlan::seeded(7).transient_draw(0));
        let run = faulted
            .run_sharded(work(), |m| lane(m.len() as f64), matmul_shard)
            .unwrap();
        assert_eq!(run.results, reference.results, "results bit-identical");
        assert!(
            run.seconds > reference.seconds,
            "only the timeline pays for the retry: {} vs {}",
            run.seconds,
            reference.seconds
        );
        let stats = faulted.fault_stats();
        assert_eq!(stats.transient_faults, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.quarantines, 1);
        assert!(stats.replans >= 1);
        assert_eq!(stats.budget_exhausted, 0);
    }

    #[test]
    fn retried_flight_charges_round_makespans_plus_backoff() {
        // Synthetic charges make the accounting exact: each shard
        // reports dt = lane count. Round 1: both 2-lane shards run
        // (makespan 2.0), device 0's results are lost. Round 2: the
        // two lost lanes rerun on the survivor (dt 2.0) after one
        // backoff step. All results come from device 1, so no gather.
        let pool = DevicePool::new(TpuConfig::small_test(), 2).with_fault_plan(
            FaultPlan::seeded(3)
                .transient_draw(0)
                .with_backoff_s(1.0e-6),
        );
        let run = pool
            .run_sharded(
                vec![10u64, 20, 30, 40],
                |_| lane(1.0),
                |_, items| {
                    let dt = items.len() as f64;
                    Ok((items, dt))
                },
            )
            .unwrap();
        assert_eq!(run.results, vec![10, 20, 30, 40], "lane order preserved");
        let expect: f64 = 2.0 + 2.0 + 1.0e-6;
        assert_eq!(run.seconds.to_bits(), expect.to_bits());
        // The pool-merged invariant holds for retried flights too.
        assert_eq!(pool.wall_seconds().to_bits(), expect.to_bits());
        assert_eq!(pool.gather_seconds(), 0.0, "single contributing chip");
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error_and_merges_nothing() {
        let pool = DevicePool::with_cores(TpuConfig::small_test(), 2, 1)
            .with_fault_plan(FaultPlan::seeded(5).transient(1.0).with_retry_budget(2));
        let err = pool
            .run_sharded(
                vec![shard_mat(0.5), shard_mat(0.7)],
                |m| lane(m.len() as f64),
                matmul_shard,
            )
            .unwrap_err();
        assert_eq!(
            err,
            TensorError::FaultBudgetExhausted {
                op: "device pool shard",
                attempts: 3,
            }
        );
        // The chips really ran (their own clocks charged)...
        assert!(pool.devices().iter().any(|d| d.wall_seconds() > 0.0));
        // ...but the failed flight merged nothing.
        assert_eq!(pool.wall_seconds(), 0.0);
        let stats = pool.fault_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.budget_exhausted, 1);
        // Clearing the plan restores healthy, bit-identical serving.
        pool.clear_fault_plan();
        let run = pool
            .run_sharded(vec![1u64, 2], |_| lane(1.0), |_, v: Vec<u64>| uncharged(v))
            .unwrap();
        assert_eq!(run.results, vec![1, 2]);
        assert_eq!(pool.healthy_devices(), 2);
    }

    #[test]
    fn fail_stop_quarantines_forever_and_the_pool_serves_on() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2)
            .with_fault_plan(FaultPlan::seeded(2).fail_stop(1, 0.0));
        let run = pool
            .run_sharded(
                (0..6u64).collect(),
                |_| lane(1.0),
                |_, v: Vec<u64>| uncharged(v),
            )
            .unwrap();
        assert_eq!(run.results, (0..6).collect::<Vec<_>>());
        assert_eq!(pool.healthy_devices(), 1);
        assert_eq!(pool.healthy_fraction(), 0.5);
        assert_eq!(pool.healthy_device_indices(), vec![0]);
        let stats = pool.fault_stats();
        assert_eq!(stats.fail_stops, 1);
        // Cooldowns never resurrect a fail-stopped chip.
        pool.advance_external(10.0);
        pool.run_sharded(
            (0..4u64).collect(),
            |_| lane(1.0),
            |_, v: Vec<u64>| uncharged(v),
        )
        .unwrap();
        assert_eq!(pool.healthy_devices(), 1);
        assert_eq!(pool.fault_stats().readmissions, 0);
    }

    #[test]
    fn transient_quarantine_readmits_after_cooldown_probe() {
        let pool = DevicePool::new(TpuConfig::small_test(), 2).with_fault_plan(
            FaultPlan::seeded(11)
                .transient_draw(0)
                .with_cooldown_s(1.0e-3),
        );
        pool.run_sharded(
            (0..4u64).collect(),
            |_| lane(1.0),
            |_, v: Vec<u64>| uncharged(v),
        )
        .unwrap();
        assert_eq!(pool.healthy_devices(), 1, "faulted chip sits in quarantine");
        // Before the cooldown expires the chip stays out...
        pool.run_sharded(
            (0..2u64).collect(),
            |_| lane(1.0),
            |_, v: Vec<u64>| uncharged(v),
        )
        .unwrap();
        assert_eq!(pool.fault_stats().readmissions, 0);
        // ...and once simulated time passes it, the next flight's
        // probe re-admits it.
        pool.advance_external(1.0);
        pool.run_sharded(
            (0..2u64).collect(),
            |_| lane(1.0),
            |_, v: Vec<u64>| uncharged(v),
        )
        .unwrap();
        let stats = pool.fault_stats();
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.readmissions, 1);
        assert_eq!(pool.healthy_devices(), 2);
    }

    #[test]
    fn healthy_fraction_tracks_scheduled_deaths_without_dispatch() {
        let pool = DevicePool::new(TpuConfig::small_test(), 4)
            .with_fault_plan(FaultPlan::seeded(0).fail_stop(2, 0.5));
        assert_eq!(pool.healthy_devices(), 4, "nothing due yet");
        pool.advance_external(1.0);
        // The death shows as soon as the merged clock passes it, even
        // before any flight dispatches.
        assert_eq!(pool.healthy_devices(), 3);
        assert_eq!(pool.healthy_fraction(), 0.75);
        assert_eq!(pool.healthy_device_indices(), vec![0, 1, 3]);
    }

    #[test]
    fn effective_topology_masks_scheduled_link_faults() {
        let pool = DevicePool::new(TpuConfig::small_test(), 4)
            .with_topology(Topology::ring())
            .with_fault_plan(FaultPlan::seeded(0).link_outage(1, 0.5));
        assert_eq!(pool.effective_topology(), Topology::ring());
        pool.advance_external(1.0);
        assert_eq!(
            pool.effective_topology(),
            Topology::ring().with_dead_link(1)
        );
        // The pool's gather pricing follows the masked fabric.
        assert!(
            pool.gather_cost_s(512, 4)
                > Topology::ring().gather_cost_s(&TpuConfig::small_test(), 512, 4)
        );
    }

    #[test]
    fn project_maps_subset_plans_onto_the_full_pool() {
        let lanes: Vec<LaneCost> = (0..5).map(|_| lane(1.0)).collect();
        let subset = ShardPlan::plan(&lanes, 2, ShardStrategy::RoundRobin);
        let full = subset.project(&[1, 3], 4);
        assert_eq!(full.assignments().len(), 4);
        assert_eq!(full.assignments()[1], vec![0, 2, 4]);
        assert_eq!(full.assignments()[3], vec![1, 3]);
        assert!(full.assignments()[0].is_empty());
        assert_eq!(full.occupied_devices(), 2);
    }

    #[test]
    fn reset_zeroes_every_chip_and_the_timeline() {
        let pool = DevicePool::new(TpuConfig::small_test(), 3);
        pool.run_sharded(
            (0..6).map(|i| shard_mat(i as f64 * 0.1)).collect(),
            |m| lane(m.len() as f64),
            matmul_shard,
        )
        .unwrap();
        assert!(pool.energy_pj() > 0.0);
        pool.reset();
        assert_eq!(pool.wall_seconds(), 0.0);
        assert_eq!(pool.gather_seconds(), 0.0);
        assert_eq!(pool.sharded_flights(), 0);
        assert_eq!(pool.energy_pj(), 0.0);
        for d in pool.devices() {
            assert_eq!(d.wall_seconds(), 0.0);
        }
    }
}
