//! A compact instruction set for the simulated TPU.
//!
//! The paper's pipeline — forward transform, Hadamard/divide, inverse
//! transform, perturbation differences — compiles into a short
//! register-level program; [`TpuCore::execute`] runs it with full cost
//! accounting. This mirrors how a real deployment would drive the
//! device once instead of round-tripping to the host per operation
//! ("a simple computation equivalent to one forward pass", §I).

use crate::core::TpuCore;
use xai_tensor::ops::DivPolicy;
use xai_tensor::{Complex64, Matrix, Result, TensorError};

/// Index of a matrix register.
pub type Slot = usize;

/// One TPU instruction over complex matrix registers.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// `dst ← a · b` on the MXU.
    MatMul {
        /// Left operand register.
        a: Slot,
        /// Right operand register.
        b: Slot,
        /// Destination register.
        dst: Slot,
    },
    /// `dst ← a ◦ b` (elementwise product).
    Hadamard {
        /// Left operand register.
        a: Slot,
        /// Right operand register.
        b: Slot,
        /// Destination register.
        dst: Slot,
    },
    /// `dst ← a ⊘ b` (elementwise division) under a policy.
    PointwiseDiv {
        /// Numerator register.
        a: Slot,
        /// Denominator register.
        b: Slot,
        /// Destination register.
        dst: Slot,
        /// Division policy for near-zero denominators.
        policy: DivPolicy,
    },
    /// `dst ← a + b`.
    Add {
        /// Left operand register.
        a: Slot,
        /// Right operand register.
        b: Slot,
        /// Destination register.
        dst: Slot,
    },
    /// `dst ← a - b`.
    Sub {
        /// Left operand register.
        a: Slot,
        /// Right operand register.
        b: Slot,
        /// Destination register.
        dst: Slot,
    },
    /// `dst ← aᵀ` (free on the host side of the simulator; charged as
    /// one unified-buffer rewrite).
    Transpose {
        /// Source register.
        a: Slot,
        /// Destination register.
        dst: Slot,
    },
    /// `dst ← conj(a)`.
    Conjugate {
        /// Source register.
        a: Slot,
        /// Destination register.
        dst: Slot,
    },
}

/// A straight-line program over a register file of complex matrices.
///
/// # Examples
///
/// ```
/// use xai_tpu::{Instruction, Program, TpuConfig, TpuCore};
/// use xai_tensor::{Complex64, Matrix};
///
/// # fn main() -> Result<(), xai_tensor::TensorError> {
/// // out = (a · b) ◦ a, in registers: 0=a, 1=b, 2=tmp, 3=out
/// let program = Program::new(4, vec![
///     Instruction::MatMul { a: 0, b: 1, dst: 2 },
///     Instruction::Hadamard { a: 2, b: 0, dst: 3 },
/// ], 3);
///
/// let mut core = TpuCore::new(TpuConfig::small_test());
/// let a = Matrix::<Complex64>::identity(4)?;
/// let b = Matrix::filled(4, 4, Complex64::new(2.0, 0.0))?;
/// let out = core.execute(&program, &[(0, a), (1, b)])?;
/// assert_eq!(out[(0, 0)], Complex64::new(2.0, 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    slots: usize,
    instructions: Vec<Instruction>,
    output: Slot,
}

impl Program {
    /// Creates a program with `slots` registers, returning `output`
    /// when executed.
    pub fn new(slots: usize, instructions: Vec<Instruction>, output: Slot) -> Self {
        Program {
            slots,
            instructions,
            output,
        }
    }

    /// Number of registers.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The register returned after execution.
    pub fn output(&self) -> Slot {
        self.output
    }

    /// Validates that every referenced register is in range.
    pub fn validate(&self) -> Result<()> {
        let check = |s: Slot| -> Result<()> {
            if s >= self.slots {
                Err(TensorError::ShapeMismatch {
                    left: (s, 0),
                    right: (self.slots, 0),
                    op: "program register out of range",
                })
            } else {
                Ok(())
            }
        };
        for ins in &self.instructions {
            match *ins {
                Instruction::MatMul { a, b, dst }
                | Instruction::Hadamard { a, b, dst }
                | Instruction::Add { a, b, dst }
                | Instruction::Sub { a, b, dst }
                | Instruction::PointwiseDiv { a, b, dst, .. } => {
                    check(a)?;
                    check(b)?;
                    check(dst)?;
                }
                Instruction::Transpose { a, dst } | Instruction::Conjugate { a, dst } => {
                    check(a)?;
                    check(dst)?;
                }
            }
        }
        check(self.output)
    }
}

impl TpuCore {
    /// Executes a [`Program`], seeding the register file with
    /// `(slot, matrix)` inputs, and returns the output register.
    ///
    /// # Errors
    ///
    /// Returns validation errors for out-of-range registers, shape
    /// errors from the underlying operations, and
    /// [`TensorError::EmptyDimension`] if a register is read before
    /// being written.
    pub fn execute(
        &mut self,
        program: &Program,
        inputs: &[(Slot, Matrix<Complex64>)],
    ) -> Result<Matrix<Complex64>> {
        program.validate()?;
        let mut regs: Vec<Option<Matrix<Complex64>>> = vec![None; program.slots()];
        for (slot, m) in inputs {
            if *slot >= regs.len() {
                return Err(TensorError::ShapeMismatch {
                    left: (*slot, 0),
                    right: (regs.len(), 0),
                    op: "program input register out of range",
                });
            }
            // Charge the host → device transfer for each input.
            self.charge_host_transfer((m.len() * std::mem::size_of::<Complex64>()) as u64);
            regs[*slot] = Some(m.clone());
        }
        let read = |regs: &[Option<Matrix<Complex64>>], s: Slot| -> Result<Matrix<Complex64>> {
            regs[s].clone().ok_or(TensorError::EmptyDimension)
        };
        for ins in program.instructions() {
            let value = match *ins {
                Instruction::MatMul { a, b, .. } => {
                    let (ma, mb) = (read(&regs, a)?, read(&regs, b)?);
                    self.matmul_complex(&ma, &mb)?
                }
                Instruction::Hadamard { a, b, .. } => {
                    let (ma, mb) = (read(&regs, a)?, read(&regs, b)?);
                    self.hadamard(&ma, &mb)?
                }
                Instruction::PointwiseDiv { a, b, policy, .. } => {
                    let (ma, mb) = (read(&regs, a)?, read(&regs, b)?);
                    self.pointwise_div(&ma, &mb, policy)?
                }
                Instruction::Add { a, b, .. } => {
                    let (ma, mb) = (read(&regs, a)?, read(&regs, b)?);
                    ma.zip_with(&mb, |x, y| x + y)?
                }
                Instruction::Sub { a, b, .. } => {
                    let (ma, mb) = (read(&regs, a)?, read(&regs, b)?);
                    ma.zip_with(&mb, |x, y| x - y)?
                }
                Instruction::Transpose { a, .. } => read(&regs, a)?.transpose(),
                Instruction::Conjugate { a, .. } => read(&regs, a)?.conj(),
            };
            let dst = match *ins {
                Instruction::MatMul { dst, .. }
                | Instruction::Hadamard { dst, .. }
                | Instruction::PointwiseDiv { dst, .. }
                | Instruction::Add { dst, .. }
                | Instruction::Sub { dst, .. }
                | Instruction::Transpose { dst, .. }
                | Instruction::Conjugate { dst, .. } => dst,
            };
            regs[dst] = Some(value);
        }
        read(&regs, program.output())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpuConfig;

    fn ident(n: usize) -> Matrix<Complex64> {
        Matrix::identity(n).unwrap()
    }

    #[test]
    fn program_validation_catches_bad_slots() {
        let p = Program::new(2, vec![Instruction::MatMul { a: 0, b: 5, dst: 1 }], 1);
        assert!(p.validate().is_err());
        let p2 = Program::new(2, vec![], 7);
        assert!(p2.validate().is_err());
        let ok = Program::new(2, vec![Instruction::Transpose { a: 0, dst: 1 }], 1);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn executes_pipeline_and_charges_cycles() {
        // out = (a·b) - a
        let p = Program::new(
            3,
            vec![
                Instruction::MatMul { a: 0, b: 1, dst: 2 },
                Instruction::Sub { a: 2, b: 0, dst: 2 },
            ],
            2,
        );
        let mut core = TpuCore::new(TpuConfig::small_test());
        let a = Matrix::filled(4, 4, Complex64::new(1.0, 0.0)).unwrap();
        let out = core.execute(&p, &[(0, a), (1, ident(4))]).unwrap();
        // a·I - a = 0
        assert!(out.iter().all(|z| z.abs() < 1e-12));
        assert!(core.elapsed_cycles() > 0);
    }

    #[test]
    fn division_instruction_uses_policy() {
        let p = Program::new(
            3,
            vec![Instruction::PointwiseDiv {
                a: 0,
                b: 1,
                dst: 2,
                policy: DivPolicy::Strict { tol: 1e-12 },
            }],
            2,
        );
        let mut core = TpuCore::new(TpuConfig::small_test());
        let a = Matrix::filled(2, 2, Complex64::ONE).unwrap();
        let zero = Matrix::filled(2, 2, Complex64::ZERO).unwrap();
        assert!(core.execute(&p, &[(0, a), (1, zero)]).is_err());
    }

    #[test]
    fn reading_unwritten_register_errors() {
        let p = Program::new(3, vec![Instruction::MatMul { a: 0, b: 1, dst: 2 }], 2);
        let mut core = TpuCore::new(TpuConfig::small_test());
        // register 1 never seeded
        assert!(core.execute(&p, &[(0, ident(2))]).is_err());
    }

    #[test]
    fn transpose_and_conjugate() {
        let p = Program::new(
            3,
            vec![
                Instruction::Transpose { a: 0, dst: 1 },
                Instruction::Conjugate { a: 1, dst: 2 },
            ],
            2,
        );
        let mut core = TpuCore::new(TpuConfig::small_test());
        let m = Matrix::from_fn(2, 3, |r, c| Complex64::new(r as f64, c as f64)).unwrap();
        let out = core.execute(&p, &[(0, m.clone())]).unwrap();
        assert_eq!(out.shape(), (3, 2));
        assert_eq!(out[(2, 1)], m[(1, 2)].conj());
    }

    #[test]
    fn out_of_range_input_slot_rejected() {
        let p = Program::new(1, vec![], 0);
        let mut core = TpuCore::new(TpuConfig::small_test());
        assert!(core.execute(&p, &[(3, ident(2))]).is_err());
    }
}
