//! A single simulated TPU core: systolic MXU + vector unit + memory
//! accounting.
//!
//! Every operation *computes its real numeric result on the host*
//! (through the configured precision's quantisation, so int8 error is
//! real and measurable) and simultaneously charges cycles, bytes and
//! energy to the core — "timing is simulated, compute is real"
//! (DESIGN.md §4).

use crate::config::{Precision, TpuConfig};
use crate::memory::MemoryModel;
use crate::systolic::{weight_load_cycles, SystolicArray};
use crate::trace::{Event, OpKind, Trace};
use xai_tensor::ops::{self, DivPolicy};
use xai_tensor::quant::QuantizedMatrix;
use xai_tensor::{Complex64, Matrix, Result};

/// Truncates an `f64` to bfloat16 precision (8-bit exponent, 7-bit
/// mantissa) and back — the numeric behaviour of a bf16 MXU datapath.
pub fn bf16_round(x: f64) -> f64 {
    let bits = (x as f32).to_bits();
    // Round-to-nearest-even on the dropped 16 bits.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    f32::from_bits(rounded & 0xFFFF_0000) as f64
}

/// One simulated TPU core.
///
/// # Examples
///
/// ```
/// use xai_tpu::{TpuConfig, TpuCore};
/// use xai_tensor::Matrix;
///
/// # fn main() -> Result<(), xai_tensor::TensorError> {
/// let mut core = TpuCore::new(TpuConfig::small_test());
/// let a = Matrix::from_fn(4, 4, |r, c| (r + c) as f64 / 8.0)?;
/// let b = Matrix::identity(4)?;
/// let c = core.matmul(&a, &b)?;
/// assert!(a.max_abs_diff(&c)? < 0.01); // int8 round-trip error only
/// assert!(core.elapsed_cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TpuCore {
    id: usize,
    cfg: TpuConfig,
    array: SystolicArray,
    memory: MemoryModel,
    trace: Trace,
    cycles: u64,
    energy_pj: f64,
}

impl TpuCore {
    /// Creates core 0 with the given configuration.
    pub fn new(cfg: TpuConfig) -> Self {
        Self::with_id(cfg, 0)
    }

    /// Creates a core with an explicit id (used by the multi-core
    /// device).
    pub fn with_id(cfg: TpuConfig, id: usize) -> Self {
        let array = SystolicArray::from_config(&cfg);
        TpuCore {
            id,
            cfg,
            array,
            memory: MemoryModel::new(),
            trace: Trace::new(),
            cycles: 0,
            energy_pj: 0.0,
        }
    }

    /// Core id within its device.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Hardware configuration.
    pub fn config(&self) -> &TpuConfig {
        &self.cfg
    }

    /// Cycles accumulated since construction or the last reset.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycles
    }

    /// Seconds equivalent of [`TpuCore::elapsed_cycles`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.cfg.cycles_to_seconds(self.cycles)
    }

    /// Energy consumed so far, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// The event log.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Memory-traffic accounting.
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    /// Achieved MXU utilisation: MAC operations executed divided by
    /// the peak MAC capacity of the elapsed cycles. 1.0 = the array
    /// never idled; small matmuls and fill/drain overhead push it
    /// down — the effect Figure 4's small-matrix regime shows.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let peak = self.cycles as f64 * self.cfg.macs_per_cycle();
        (self.trace.total_ops() as f64 / peak).min(1.0)
    }

    /// Zeroes all counters and the trace.
    pub fn reset(&mut self) {
        self.memory.reset();
        self.trace.clear();
        self.cycles = 0;
        self.energy_pj = 0.0;
    }

    // --- charged operations -------------------------------------------

    /// Real matrix product through the MXU datapath.
    ///
    /// Under [`Precision::Int8`] both operands round-trip through
    /// symmetric int8 quantisation (real quantisation error); under
    /// [`Precision::Bf16`] they are truncated to bfloat16.
    ///
    /// # Errors
    ///
    /// Returns a shape error when inner dimensions disagree.
    pub fn matmul(&mut self, a: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>> {
        let (m, k) = a.shape();
        let n = b.cols();
        let result = match self.cfg.precision {
            Precision::Int8 => {
                let qa = QuantizedMatrix::quantize_symmetric(a)?;
                let qb = QuantizedMatrix::quantize_symmetric(b)?;
                qa.matmul_dequant(&qb)?
            }
            Precision::Bf16 => {
                let ta = a.map(bf16_round);
                let tb = b.map(bf16_round);
                ops::matmul(&ta, &tb)?
            }
        };
        self.charge_matmul(m, k, n, 1);
        Ok(result)
    }

    /// Complex matrix product, evaluated as three real products
    /// (Karatsuba decomposition) on the MXU.
    ///
    /// Spectra are kept at full precision numerically (the DFT-matrix
    /// path is bf16-class work on real TPUs — see Lu et al.,
    /// "Large-scale discrete Fourier transform on TPUs", the paper's
    /// reference \[3\]); the *cost* is charged at the configured
    /// precision.
    ///
    /// # Errors
    ///
    /// Returns a shape error when inner dimensions disagree.
    pub fn matmul_complex(
        &mut self,
        a: &Matrix<Complex64>,
        b: &Matrix<Complex64>,
    ) -> Result<Matrix<Complex64>> {
        let (m, k) = a.shape();
        let n = b.cols();
        let result = ops::matmul(a, b)?;
        // Karatsuba: 3 real m×k·k×n products instead of 4.
        self.charge_matmul(m, k, n, 3);
        Ok(result)
    }

    /// Elementwise complex product (Hadamard, Equation 3).
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes disagree.
    pub fn hadamard(
        &mut self,
        a: &Matrix<Complex64>,
        b: &Matrix<Complex64>,
    ) -> Result<Matrix<Complex64>> {
        let out = ops::hadamard(a, b)?;
        self.charge_elementwise("hadamard", a.len() as u64, 6);
        Ok(out)
    }

    /// Elementwise complex division (Equation 4) under `policy`.
    ///
    /// # Errors
    ///
    /// Returns shape errors and, under [`DivPolicy::Strict`], division
    /// by zero.
    pub fn pointwise_div(
        &mut self,
        a: &Matrix<Complex64>,
        b: &Matrix<Complex64>,
        policy: DivPolicy,
    ) -> Result<Matrix<Complex64>> {
        let out = ops::pointwise_div(a, b, policy)?;
        self.charge_elementwise("pointwise-div", a.len() as u64, 10);
        Ok(out)
    }

    /// Elementwise real addition on the vector unit.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes disagree.
    pub fn add(&mut self, a: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>> {
        let out = ops::add(a, b)?;
        self.charge_elementwise("add", a.len() as u64, 1);
        Ok(out)
    }

    /// Elementwise real subtraction on the vector unit.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes disagree.
    pub fn sub(&mut self, a: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>> {
        let out = ops::sub(a, b)?;
        self.charge_elementwise("sub", a.len() as u64, 1);
        Ok(out)
    }

    /// Charges a host → device transfer of `bytes`.
    pub fn charge_host_transfer(&mut self, bytes: u64) {
        self.memory.record_read(bytes);
        let cycles = (bytes as f64 / self.cfg.hbm_bytes_per_cycle_per_core()).ceil() as u64;
        self.cycles += cycles;
        self.energy_pj += bytes as f64 * self.cfg.pj_per_hbm_byte;
        self.trace.push(Event {
            kind: OpKind::Host,
            label: format!("host transfer {bytes} B"),
            cycles,
            bytes,
            ops: 0,
        });
    }

    /// Appends a pre-built event to the trace (crate-internal hook for
    /// the device's collective accounting).
    pub(crate) fn trace_push(&mut self, event: Event) {
        // Collective time is accounted at device level (wall/comm
        // clocks); the event is logged here for visibility only.
        self.trace.push(event);
    }

    /// Charges the cycle/energy/traffic cost of an `m×k·k×n` MXU
    /// matmul (`passes` repetitions) without computing it — used by
    /// schedulers that compute results on a fast host path while
    /// simulating device timing ("timing is simulated, compute is
    /// real"; the *result* comes from elsewhere).
    pub fn charge_matmul_work(&mut self, m: usize, k: usize, n: usize, passes: u64) {
        self.charge_matmul(m, k, n, passes);
    }

    /// Charges the cost of an elementwise vector-unit op over `elems`
    /// elements without computing it.
    pub fn charge_elementwise_work(&mut self, label: &str, elems: u64) {
        self.charge_elementwise(label, elems, 6);
    }

    fn charge_matmul(&mut self, m: usize, k: usize, n: usize, passes: u64) {
        // Weight loads are already folded into matmul_cycles for both
        // buffering modes.
        let stream = self
            .array
            .matmul_cycles(m, k, n, self.cfg.double_buffered_weights);
        let compute_cycles = stream * passes;
        let elem = self.cfg.precision.bytes() as u64;
        let bytes = ((m * k + k * n) as u64) * elem + (m * n) as u64 * 4; // i32/f32 accumulators out
        let mem_cycles = (bytes as f64 / self.cfg.hbm_bytes_per_cycle_per_core()).ceil() as u64;
        let macs = (m * k * n) as u64 * passes;
        // Compute and memory overlap; the core is busy for the max.
        let total = compute_cycles.max(mem_cycles);
        self.cycles += total;
        self.memory.record_read(((m * k + k * n) as u64) * elem);
        self.memory.record_write((m * n) as u64 * 4);
        self.memory.record_working_set(bytes, &self.cfg.clone());
        let energy_factor = (self.cfg.precision.bytes() * self.cfg.precision.bytes()) as f64;
        self.energy_pj += macs as f64 * self.cfg.pj_per_mac * energy_factor
            + bytes as f64 * self.cfg.pj_per_hbm_byte;
        self.trace.push(Event {
            kind: OpKind::MatMul,
            label: format!("matmul {m}x{k}x{n} (x{passes})"),
            cycles: total,
            bytes,
            ops: macs,
        });
        if !self.cfg.double_buffered_weights {
            // weight loads already inside matmul_cycles; log separately for visibility
            self.trace.push(Event {
                kind: OpKind::WeightLoad,
                label: format!("weight tiles k={k}"),
                cycles: weight_load_cycles(k.min(self.cfg.array_rows)),
                bytes: 0,
                ops: 0,
            });
        }
    }

    fn charge_elementwise(&mut self, label: &str, elems: u64, flops_per_elem: u64) {
        // Vector unit processes one lane-width row per cycle.
        let lanes = self.cfg.array_cols as u64;
        let cycles = elems.div_ceil(lanes);
        let bytes = elems * 8;
        self.cycles += cycles;
        self.memory.record_read(bytes);
        self.energy_pj +=
            (elems * flops_per_elem) as f64 * self.cfg.pj_per_mac + bytes as f64 * 2.0;
        self.trace.push(Event {
            kind: OpKind::Elementwise,
            label: format!("{label} n={elems}"),
            cycles,
            bytes,
            ops: elems * flops_per_elem,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_matrix(n: usize) -> Matrix<f64> {
        Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 13) as f64 / 13.0 - 0.5).unwrap()
    }

    #[test]
    fn bf16_round_behaviour() {
        // bf16 has ~3 significant decimal digits.
        assert_eq!(bf16_round(1.0), 1.0);
        assert_eq!(bf16_round(0.0), 0.0);
        let x = 1.2345678;
        let r = bf16_round(x);
        assert!((r - x).abs() < 0.01);
        assert!(r != x); // precision actually dropped
    }

    #[test]
    fn matmul_int8_result_is_close_and_charged() {
        let mut core = TpuCore::new(TpuConfig::small_test());
        let a = unit_matrix(6);
        let b = unit_matrix(6);
        let exact = ops::matmul(&a, &b).unwrap();
        let got = core.matmul(&a, &b).unwrap();
        assert!(exact.max_abs_diff(&got).unwrap() < 0.05);
        assert!(core.elapsed_cycles() > 0);
        assert!(core.energy_pj() > 0.0);
        assert_eq!(core.trace().len(), 2); // matmul + weight-load log
    }

    #[test]
    fn matmul_bf16_is_more_accurate_than_int8() {
        let a = unit_matrix(8);
        let b = unit_matrix(8);
        let exact = ops::matmul(&a, &b).unwrap();

        let mut int8_core = TpuCore::new(TpuConfig::small_test());
        let e_int8 = exact
            .max_abs_diff(&int8_core.matmul(&a, &b).unwrap())
            .unwrap();

        let mut cfg = TpuConfig::small_test();
        cfg.precision = Precision::Bf16;
        let mut bf16_core = TpuCore::new(cfg);
        let e_bf16 = exact
            .max_abs_diff(&bf16_core.matmul(&a, &b).unwrap())
            .unwrap();

        assert!(e_bf16 < e_int8, "bf16 {e_bf16} should beat int8 {e_int8}");
    }

    #[test]
    fn complex_matmul_is_exact_and_charges_three_passes() {
        let mut core = TpuCore::new(TpuConfig::small_test());
        let a = Matrix::from_fn(4, 4, |r, c| Complex64::new(r as f64, c as f64)).unwrap();
        let id = Matrix::<Complex64>::identity(4).unwrap();
        let before = core.elapsed_cycles();
        let out = core.matmul_complex(&a, &id).unwrap();
        assert!(out.max_abs_diff(&a).unwrap() < 1e-12);
        let complex_cost = core.elapsed_cycles() - before;

        let mut real_core = TpuCore::new(TpuConfig::small_test());
        let ra = unit_matrix(4);
        real_core.matmul(&ra, &ra).unwrap();
        let real_cost = real_core.elapsed_cycles();
        assert!(complex_cost >= 3 * real_cost.min(complex_cost / 3));
        assert!(complex_cost > real_cost);
    }

    #[test]
    fn elementwise_ops_compute_and_charge() {
        let mut core = TpuCore::new(TpuConfig::small_test());
        let a = Matrix::filled(4, 4, Complex64::new(2.0, 0.0)).unwrap();
        let b = Matrix::filled(4, 4, Complex64::new(3.0, 0.0)).unwrap();
        let h = core.hadamard(&a, &b).unwrap();
        assert_eq!(h[(0, 0)], Complex64::new(6.0, 0.0));
        let d = core.pointwise_div(&a, &b, DivPolicy::default()).unwrap();
        assert!((d[(0, 0)].re - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            core.trace().cycles_of(OpKind::Elementwise),
            core.elapsed_cycles()
        );
    }

    #[test]
    fn add_sub_on_vector_unit() {
        let mut core = TpuCore::new(TpuConfig::small_test());
        let a = Matrix::filled(2, 2, 5.0).unwrap();
        let b = Matrix::filled(2, 2, 3.0).unwrap();
        assert_eq!(core.add(&a, &b).unwrap()[(0, 0)], 8.0);
        assert_eq!(core.sub(&a, &b).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut core = TpuCore::new(TpuConfig::small_test());
        let a = unit_matrix(4);
        core.matmul(&a, &a).unwrap();
        assert!(core.elapsed_cycles() > 0);
        core.reset();
        assert_eq!(core.elapsed_cycles(), 0);
        assert_eq!(core.energy_pj(), 0.0);
        assert!(core.trace().is_empty());
        assert_eq!(core.memory().total_bytes(), 0);
    }

    #[test]
    fn host_transfer_charges_bandwidth() {
        let mut core = TpuCore::new(TpuConfig::small_test());
        core.charge_host_transfer(5_000);
        // 500 B/cycle/core in the small config
        assert_eq!(core.elapsed_cycles(), 10);
    }

    #[test]
    fn bigger_matmul_costs_more() {
        let mut core = TpuCore::new(TpuConfig::small_test());
        core.matmul(&unit_matrix(4), &unit_matrix(4)).unwrap();
        let small = core.elapsed_cycles();
        core.reset();
        core.matmul(&unit_matrix(16), &unit_matrix(16)).unwrap();
        assert!(core.elapsed_cycles() > small);
    }

    #[test]
    fn utilization_grows_with_matmul_size() {
        // Bigger matmuls amortise fill/drain: utilisation must rise.
        let mut small_core = TpuCore::new(TpuConfig::small_test());
        small_core.matmul(&unit_matrix(2), &unit_matrix(2)).unwrap();
        let small = small_core.utilization();
        let mut big_core = TpuCore::new(TpuConfig::small_test());
        big_core.matmul(&unit_matrix(16), &unit_matrix(16)).unwrap();
        let big = big_core.utilization();
        assert!(big > small, "{big} !> {small}");
        assert!(big <= 1.0);
        assert_eq!(TpuCore::new(TpuConfig::small_test()).utilization(), 0.0);
    }

    #[test]
    fn elapsed_seconds_scales_with_clock() {
        let mut core = TpuCore::new(TpuConfig::small_test()); // 1 MHz
        core.charge_host_transfer(500);
        assert!((core.elapsed_seconds() - 1e-6).abs() < 1e-12);
    }
}
