//! Execution trace: a per-core event log of everything the simulator
//! charged, used by tests, the benchmark harness, and anyone debugging
//! a schedule.

use std::fmt;

/// Category of a traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// MXU matrix multiplication.
    MatMul,
    /// Vector-unit elementwise operation (add, multiply, divide…).
    Elementwise,
    /// Weight FIFO load.
    WeightLoad,
    /// HBM transfer.
    Memory,
    /// Inter-core collective (`cross_replica_sum`).
    Collective,
    /// Host ↔ device transfer.
    Host,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::MatMul => "matmul",
            OpKind::Elementwise => "elementwise",
            OpKind::WeightLoad => "weight-load",
            OpKind::Memory => "memory",
            OpKind::Collective => "collective",
            OpKind::Host => "host",
        };
        f.write_str(s)
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Operation category.
    pub kind: OpKind,
    /// Human-readable label (e.g. `"matmul 128x256x64"`).
    pub label: String,
    /// Cycles charged to the core for this event.
    pub cycles: u64,
    /// Bytes of memory traffic attributed to this event.
    pub bytes: u64,
    /// MAC (or equivalent arithmetic) operations performed.
    pub ops: u64,
}

/// An append-only event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total cycles across all events.
    pub fn total_cycles(&self) -> u64 {
        self.events.iter().map(|e| e.cycles).sum()
    }

    /// Total arithmetic operations across all events.
    pub fn total_ops(&self) -> u64 {
        self.events.iter().map(|e| e.ops).sum()
    }

    /// Total bytes across all events.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.bytes).sum()
    }

    /// Cycles attributed to one kind of operation.
    pub fn cycles_of(&self, kind: OpKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.cycles)
            .sum()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders an ASCII occupancy timeline: one lane per op kind,
    /// `width` columns spanning the trace's total cycles, `#` where
    /// that kind of work was in flight. Events are laid out serially
    /// in log order (the single-core view).
    pub fn to_timeline(&self, width: usize) -> String {
        let total = self.total_cycles().max(1);
        let width = width.max(10);
        let kinds = [
            OpKind::MatMul,
            OpKind::Elementwise,
            OpKind::WeightLoad,
            OpKind::Memory,
            OpKind::Collective,
            OpKind::Host,
        ];
        let mut lanes: Vec<(OpKind, Vec<char>)> =
            kinds.iter().map(|&k| (k, vec!['.'; width])).collect();
        let mut cursor: u64 = 0;
        for e in &self.events {
            let start = (cursor * width as u64 / total) as usize;
            cursor += e.cycles;
            let end = ((cursor * width as u64).div_ceil(total) as usize).min(width);
            if let Some((_, lane)) = lanes.iter_mut().find(|(k, _)| *k == e.kind) {
                for c in lane.iter_mut().take(end).skip(start) {
                    *c = '#';
                }
            }
        }
        let mut out = format!("timeline ({} cycles):\n", self.total_cycles());
        for (kind, lane) in &lanes {
            if lane.contains(&'#') {
                out.push_str(&format!(
                    "  {:<12} {}\n",
                    kind.to_string(),
                    lane.iter().collect::<String>()
                ));
            }
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events, {} cycles",
            self.len(),
            self.total_cycles()
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  [{}] {} — {} cycles, {} bytes, {} ops",
                e.kind, e.label, e.cycles, e.bytes, e.ops
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: OpKind, cycles: u64) -> Event {
        Event {
            kind,
            label: "test".into(),
            cycles,
            bytes: cycles * 2,
            ops: cycles * 3,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(event(OpKind::MatMul, 10));
        t.push(event(OpKind::Memory, 5));
        t.push(event(OpKind::MatMul, 7));
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_cycles(), 22);
        assert_eq!(t.total_bytes(), 44);
        assert_eq!(t.total_ops(), 66);
        assert_eq!(t.cycles_of(OpKind::MatMul), 17);
        assert_eq!(t.cycles_of(OpKind::Collective), 0);
    }

    #[test]
    fn display_contains_labels() {
        let mut t = Trace::new();
        t.push(event(OpKind::Elementwise, 1));
        let s = t.to_string();
        assert!(s.contains("elementwise"));
        assert!(s.contains("1 events"));
    }

    #[test]
    fn timeline_shows_busy_lanes_only() {
        let mut t = Trace::new();
        t.push(event(OpKind::MatMul, 50));
        t.push(event(OpKind::Memory, 50));
        let tl = t.to_timeline(20);
        assert!(tl.contains("matmul"));
        assert!(tl.contains("memory"));
        assert!(!tl.contains("collective"));
        assert!(tl.contains('#'));
        // Each lane is busy for roughly half the span.
        let matmul_line = tl.lines().find(|l| l.contains("matmul")).unwrap();
        let busy = matmul_line.chars().filter(|&c| c == '#').count();
        assert!((8..=12).contains(&busy), "busy {busy}");
    }

    #[test]
    fn empty_timeline_has_header_only() {
        let t = Trace::new();
        let tl = t.to_timeline(20);
        assert!(tl.starts_with("timeline"));
        assert!(!tl.contains('#'));
    }

    #[test]
    fn clear_empties_log() {
        let mut t = Trace::new();
        t.push(event(OpKind::Host, 3));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_cycles(), 0);
    }
}
