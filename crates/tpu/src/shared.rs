//! A shareable, thread-safe front-end over [`TpuDevice`].
//!
//! The simulator core mutates per-core cycle counters on every op, so
//! [`TpuDevice`] methods take `&mut self`. Concurrent callers — the
//! worker threads of `explain_batch_parallel`, or several pipelines
//! racing one device — instead hold a [`SharedDevice`]: a cheaply
//! cloneable handle (an [`Arc`]`<`[`Mutex`]`<TpuDevice>>`) whose
//! methods take `&self` and serialise access per call. Simulated time
//! accumulates exactly as if the callers had taken turns, which is
//! the device-sharing semantics the paper's multi-input parallelism
//! (§III-D) assumes: one device, many enqueued workloads.

use crate::config::TpuConfig;
use crate::device::TpuDevice;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A cloneable, `Send + Sync` handle to one simulated TPU.
///
/// All clones refer to the *same* device: cycles, collectives and
/// energy accumulate globally across every handle, matching how a
/// physical accelerator is shared between host threads.
///
/// # Examples
///
/// ```
/// use xai_tpu::{SharedDevice, TpuConfig};
/// use xai_tensor::Matrix;
///
/// # fn main() -> Result<(), xai_tensor::TensorError> {
/// let dev = SharedDevice::new(TpuConfig::small_test());
/// let handle = dev.clone(); // same device
/// let shards: Vec<Matrix<f64>> = (0..2)
///     .map(|i| Matrix::filled(4, 4, i as f64 + 0.5))
///     .collect::<Result<_, _>>()?;
/// handle.run_phase(shards, |core, s| core.matmul(&s, &s))?;
/// assert!(dev.wall_seconds() > 0.0); // visible through every handle
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedDevice {
    inner: Arc<Mutex<TpuDevice>>,
}

impl SharedDevice {
    /// Creates a new device with `cfg.cores` cores.
    pub fn new(cfg: TpuConfig) -> Self {
        Self::from_device(TpuDevice::new(cfg))
    }

    /// Creates a device overriding the configured core count.
    pub fn with_cores(cfg: TpuConfig, cores: usize) -> Self {
        Self::from_device(TpuDevice::with_cores(cfg, cores))
    }

    /// Wraps an existing device.
    pub fn from_device(device: TpuDevice) -> Self {
        SharedDevice {
            inner: Arc::new(Mutex::new(device)),
        }
    }

    /// Runs `f` with exclusive access to the device. The lock is held
    /// for the whole closure, so a multi-step schedule (phase +
    /// collective) is timed atomically even under concurrency.
    ///
    /// A lock poisoned by a panicking worker is recovered: the device
    /// state is a ledger of monotone counters that stays internally
    /// consistent, so one crashed request must not wedge the shared
    /// device for every other thread.
    pub fn with<R>(&self, f: impl FnOnce(&mut TpuDevice) -> R) -> R {
        f(&mut self.lock())
    }

    /// Runs `f` with exclusive access and returns its value together
    /// with the simulated seconds it advanced this device's wall
    /// clock — an atomic charge-and-measure step. Because the lock is
    /// held across both the charge and the measurement, the delta is
    /// exact even when other threads charge this device concurrently.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error.
    pub fn timed<R>(
        &self,
        f: impl FnOnce(&mut TpuDevice) -> xai_tensor::Result<R>,
    ) -> xai_tensor::Result<(R, f64)> {
        self.with(|d| {
            let before = d.wall_seconds();
            let value = f(d)?;
            Ok((value, d.wall_seconds() - before))
        })
    }

    /// Convenience forward of [`TpuDevice::run_phase`] under the lock.
    ///
    /// # Errors
    ///
    /// As [`TpuDevice::run_phase`].
    pub fn run_phase<W, R>(
        &self,
        work: Vec<W>,
        f: impl FnMut(&mut crate::TpuCore, W) -> xai_tensor::Result<R>,
    ) -> xai_tensor::Result<Vec<R>> {
        self.lock().run_phase(work, f)
    }

    /// Device configuration (cloned snapshot).
    pub fn config(&self) -> TpuConfig {
        self.lock().config().clone()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.lock().num_cores()
    }

    /// Accumulated wall time across all phases, seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.lock().wall_seconds()
    }

    /// Accumulated collective-communication time, seconds.
    pub fn comm_seconds(&self) -> f64 {
        self.lock().comm_seconds()
    }

    /// Number of collectives issued.
    pub fn collectives(&self) -> u64 {
        self.lock().collectives()
    }

    /// Total energy across cores, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.lock().energy_pj()
    }

    /// Zeroes all core counters and device clocks.
    pub fn reset(&self) {
        self.lock().reset();
    }

    /// `true` when both handles refer to the same device.
    pub fn same_device(&self, other: &SharedDevice) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn lock(&self) -> MutexGuard<'_, TpuDevice> {
        // Recover from poisoning: cycle/energy/communication counters
        // are monotone sums, so the worst a mid-kernel panic leaves
        // behind is a partially-charged phase — still serviceable,
        // unlike a process-wide wedge.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_tensor::Matrix;

    fn shard(v: f64) -> Matrix<f64> {
        Matrix::filled(4, 4, v).unwrap()
    }

    #[test]
    fn clones_share_one_clock() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        let other = dev.clone();
        assert!(dev.same_device(&other));
        other
            .run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s))
            .unwrap();
        assert!(dev.wall_seconds() > 0.0);
        assert_eq!(dev.wall_seconds(), other.wall_seconds());
    }

    #[test]
    fn timed_measures_exactly_its_own_charge() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        let (out, dt) = dev
            .timed(|d| d.run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s)))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(dt > 0.0);
        assert_eq!(dev.wall_seconds(), dt);
        // A second timed region measures only its own delta.
        let (_, dt2) = dev
            .timed(|d| d.run_phase(vec![shard(2.0)], |core, s| core.matmul(&s, &s)))
            .unwrap();
        assert!((dev.wall_seconds() - dt - dt2).abs() < 1e-18);
    }

    #[test]
    fn with_gives_atomic_multi_step_access() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        let (sum, dt) = dev
            .with(|d| {
                let before = d.wall_seconds();
                let parts =
                    d.run_phase(vec![shard(1.0), shard(2.0)], |core, s| core.matmul(&s, &s))?;
                let sum = d.cross_replica_sum(&parts)?;
                Ok::<_, xai_tensor::TensorError>((sum, d.wall_seconds() - before))
            })
            .unwrap();
        assert_eq!(sum.shape(), (4, 4));
        assert!(dt > 0.0);
        assert_eq!(dev.collectives(), 1);
    }

    #[test]
    fn concurrent_phases_accumulate_deterministically() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = dev.clone();
                scope.spawn(move || {
                    handle
                        .run_phase(vec![shard(0.5)], |core, s| core.matmul(&s, &s))
                        .unwrap();
                });
            }
        });
        // Four identical one-shard phases, serialised by the lock:
        // total wall time is exactly 4x one phase regardless of
        // interleaving.
        let serial = SharedDevice::new(TpuConfig::small_test());
        for _ in 0..4 {
            serial
                .run_phase(vec![shard(0.5)], |core, s| core.matmul(&s, &s))
                .unwrap();
        }
        assert!((dev.wall_seconds() - serial.wall_seconds()).abs() < 1e-15);
    }

    #[test]
    fn poisoned_device_recovers_and_keeps_serving() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        dev.run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s))
            .unwrap();
        let before = dev.wall_seconds();
        // A worker panics while holding the device lock (`with` holds
        // it for the whole closure) — the worst case for poisoning.
        let crashing = dev.clone();
        let handle =
            std::thread::spawn(move || crashing.with(|_| panic!("worker crash mid-schedule")));
        assert!(handle.join().is_err(), "worker must have panicked");
        assert!(dev.inner.is_poisoned(), "lock must actually be poisoned");
        // Subsequent requests on every other handle still serve and
        // the ledger keeps accumulating.
        dev.run_phase(vec![shard(2.0)], |core, s| core.matmul(&s, &s))
            .unwrap();
        assert!(dev.wall_seconds() > before);
    }

    #[test]
    fn reset_visible_through_all_handles() {
        let dev = SharedDevice::with_cores(TpuConfig::small_test(), 4);
        assert_eq!(dev.num_cores(), 4);
        dev.run_phase(vec![shard(0.1)], |core, s| core.matmul(&s, &s))
            .unwrap();
        let other = dev.clone();
        other.reset();
        assert_eq!(dev.wall_seconds(), 0.0);
        assert_eq!(dev.energy_pj(), 0.0);
    }
}
