//! A shareable, thread-safe front-end over [`TpuDevice`].
//!
//! The simulator core mutates per-core cycle counters on every op, so
//! [`TpuDevice`] methods take `&mut self`. Concurrent callers — the
//! worker threads of `explain_batch_parallel`, or several pipelines
//! racing one device — instead hold a [`SharedDevice`]: a cheaply
//! cloneable handle (an [`Arc`]`<`[`Mutex`]`<TpuDevice>>`) whose
//! methods take `&self` and serialise access per call. Simulated time
//! accumulates exactly as if the callers had taken turns, which is
//! the device-sharing semantics the paper's multi-input parallelism
//! (§III-D) assumes: one device, many enqueued workloads.

use crate::config::TpuConfig;
use crate::device::TpuDevice;
use std::sync::Arc;
use xai_sync::{LockClass, OrderedCondvar, OrderedMutex, OrderedMutexGuard};

/// The whole-device mutex. Ranked below the queue/pool locks (a
/// flight leader charges the device while coordinating a batch) and
/// above the lane scheduler, the host pool's queues and the leaf
/// ledgers — all of which may be taken while a kernel holds the
/// device.
static TPU_DEVICE: LockClass = LockClass::new("tpu::device", 30);

/// The per-core lane scheduler. Leased and freed while no device
/// lock is needed, but `LaneLease::timed` records its charge right
/// after the device releases — so lanes rank below the device.
static DEVICE_LANES: LockClass = LockClass::new("device::lanes", 34);

/// A cloneable, `Send + Sync` handle to one simulated TPU.
///
/// All clones refer to the *same* device: cycles, collectives and
/// energy accumulate globally across every handle, matching how a
/// physical accelerator is shared between host threads.
///
/// Beyond the whole-device mutex, the handle tracks **per-core
/// lanes**: a flight leases a subset of the chip's cores via
/// [`SharedDevice::lease`] and charges through the lease, so two
/// concurrent flights that fit on disjoint cores *overlap* on the
/// lane timeline instead of convoying. The ledger itself (cycles,
/// bytes, energy, collectives) still accumulates under the single
/// mutex exactly as before — the lane overlay only records how much
/// of the serial charge could have run concurrently, so every
/// numeric result and every `wall_seconds` total stays bit-identical
/// to the pre-lane code.
///
/// # Examples
///
/// ```
/// use xai_tpu::{SharedDevice, TpuConfig};
/// use xai_tensor::Matrix;
///
/// # fn main() -> Result<(), xai_tensor::TensorError> {
/// let dev = SharedDevice::new(TpuConfig::small_test());
/// let handle = dev.clone(); // same device
/// let shards: Vec<Matrix<f64>> = (0..2)
///     .map(|i| Matrix::filled(4, 4, i as f64 + 0.5))
///     .collect::<Result<_, _>>()?;
/// handle.run_phase(shards, |core, s| core.matmul(&s, &s))?;
/// assert!(dev.wall_seconds() > 0.0); // visible through every handle
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedDevice {
    inner: Arc<OrderedMutex<TpuDevice>>,
    lanes: Arc<LaneSet>,
}

/// The per-core lane scheduler state shared by every handle clone.
#[derive(Debug)]
struct LaneSet {
    state: OrderedMutex<LaneState>,
    /// Wakes blocked [`SharedDevice::lease`] calls when lanes free up.
    freed: OrderedCondvar,
}

#[derive(Debug)]
struct LaneState {
    /// Whether each core lane is currently leased by a live flight.
    busy: Vec<bool>,
    /// The lane-timeline instant each core becomes idle again.
    busy_until: Vec<f64>,
    /// Sum of every charge routed through a lease — the convoyed
    /// (pre-lane) timeline length.
    serial_s: f64,
}

impl LaneSet {
    fn new(cores: usize) -> Self {
        LaneSet {
            state: OrderedMutex::new(
                &DEVICE_LANES,
                LaneState {
                    busy: vec![false; cores.max(1)],
                    busy_until: vec![0.0; cores.max(1)],
                    serial_s: 0.0,
                },
            ),
            freed: OrderedCondvar::new(),
        }
    }

    fn lock(&self) -> OrderedMutexGuard<'_, LaneState> {
        self.state.lock_recover()
    }
}

/// An exclusive lease on a subset of one device's core lanes,
/// returned by [`SharedDevice::lease`]. Charges routed through
/// [`LaneLease::timed`] advance only the leased lanes on the lane
/// timeline (and the whole-device ledger exactly as an un-leased
/// [`SharedDevice::timed`] would). Dropping the lease frees the
/// lanes and wakes blocked leasers.
#[derive(Debug)]
pub struct LaneLease {
    device: SharedDevice,
    cores: Vec<usize>,
}

impl SharedDevice {
    /// Creates a new device with `cfg.cores` cores.
    pub fn new(cfg: TpuConfig) -> Self {
        Self::from_device(TpuDevice::new(cfg))
    }

    /// Creates a device overriding the configured core count.
    pub fn with_cores(cfg: TpuConfig, cores: usize) -> Self {
        Self::from_device(TpuDevice::with_cores(cfg, cores))
    }

    /// Wraps an existing device.
    pub fn from_device(device: TpuDevice) -> Self {
        let cores = device.num_cores();
        SharedDevice {
            inner: Arc::new(OrderedMutex::new(&TPU_DEVICE, device)),
            lanes: Arc::new(LaneSet::new(cores)),
        }
    }

    /// Leases up to `want` free core lanes, blocking while *no* lane
    /// is free. Returns a [`LaneLease`] holding at least one and at
    /// most `min(want, num_cores)` lanes — a flight that asked for
    /// four cores on a busy chip may receive fewer and simply run
    /// longer on the lane timeline, exactly like a real scheduler
    /// packing co-tenant jobs.
    ///
    /// Free lanes are taken **most-recently-busy first** (largest
    /// `busy_until`): back-to-back flights from one caller chain onto
    /// the same cores and stay serial on the lane timeline, so only
    /// genuinely concurrent leases record overlap.
    pub fn lease(&self, want: usize) -> LaneLease {
        let want = want.max(1);
        let mut st = self.lanes.lock();
        loop {
            let mut free: Vec<usize> = (0..st.busy.len()).filter(|&i| !st.busy[i]).collect();
            if !free.is_empty() {
                free.sort_by(|&a, &b| {
                    st.busy_until[b]
                        .partial_cmp(&st.busy_until[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                free.truncate(want);
                for &i in &free {
                    st.busy[i] = true;
                }
                return LaneLease {
                    device: self.clone(),
                    cores: free,
                };
            }
            st = self.lanes.freed.wait(st);
        }
    }

    /// Total charge routed through lane leases, ignoring overlap —
    /// the length the lane timeline would have if every flight had
    /// convoyed behind the whole-device mutex.
    pub fn lane_serial_seconds(&self) -> f64 {
        self.lanes.lock().serial_s
    }

    /// Lane-timeline makespan: the instant the last core goes idle.
    /// With overlapping flights this is shorter than
    /// [`SharedDevice::lane_serial_seconds`].
    pub fn lane_makespan_seconds(&self) -> f64 {
        let st = self.lanes.lock();
        st.busy_until.iter().fold(0.0f64, |m, &t| m.max(t))
    }

    /// Seconds of charge that ran concurrently on disjoint core
    /// lanes: `lane_serial_seconds − lane_makespan_seconds`. Zero
    /// when every flight convoyed; positive when flights overlapped.
    pub fn lane_overlap_seconds(&self) -> f64 {
        let st = self.lanes.lock();
        let makespan = st.busy_until.iter().fold(0.0f64, |m, &t| m.max(t));
        (st.serial_s - makespan).max(0.0)
    }

    /// Runs `f` with exclusive access to the device. The lock is held
    /// for the whole closure, so a multi-step schedule (phase +
    /// collective) is timed atomically even under concurrency.
    ///
    /// A lock poisoned by a panicking worker is recovered: the device
    /// state is a ledger of monotone counters that stays internally
    /// consistent, so one crashed request must not wedge the shared
    /// device for every other thread.
    pub fn with<R>(&self, f: impl FnOnce(&mut TpuDevice) -> R) -> R {
        f(&mut self.lock())
    }

    /// Runs `f` with exclusive access and returns its value together
    /// with the simulated seconds it advanced this device's wall
    /// clock — an atomic charge-and-measure step. Because the lock is
    /// held across both the charge and the measurement, the delta is
    /// exact even when other threads charge this device concurrently.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error.
    pub fn timed<R>(
        &self,
        f: impl FnOnce(&mut TpuDevice) -> xai_tensor::Result<R>,
    ) -> xai_tensor::Result<(R, f64)> {
        self.with(|d| {
            let before = d.wall_seconds();
            let value = f(d)?;
            Ok((value, d.wall_seconds() - before))
        })
    }

    /// Convenience forward of [`TpuDevice::run_phase`] under the lock.
    ///
    /// # Errors
    ///
    /// As [`TpuDevice::run_phase`].
    pub fn run_phase<W, R>(
        &self,
        work: Vec<W>,
        f: impl FnMut(&mut crate::TpuCore, W) -> xai_tensor::Result<R>,
    ) -> xai_tensor::Result<Vec<R>> {
        self.lock().run_phase(work, f)
    }

    /// Device configuration (cloned snapshot).
    pub fn config(&self) -> TpuConfig {
        self.lock().config().clone()
    }

    /// The interconnect topology pricing this chip's collectives —
    /// the fabric its core lanes overlay. Snapshot of the config's
    /// [`crate::Topology`]; [`crate::DevicePool`] seeds its
    /// inter-chip fabric from the primary chip's value.
    pub fn topology(&self) -> crate::Topology {
        self.lock().config().topology
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.lock().num_cores()
    }

    /// Accumulated wall time across all phases, seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.lock().wall_seconds()
    }

    /// Accumulated collective-communication time, seconds.
    pub fn comm_seconds(&self) -> f64 {
        self.lock().comm_seconds()
    }

    /// Number of collectives issued.
    pub fn collectives(&self) -> u64 {
        self.lock().collectives()
    }

    /// Total energy across cores, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.lock().energy_pj()
    }

    /// Zeroes all core counters and device clocks, including the
    /// per-core lane timeline. Lanes leased at reset time stay
    /// leased; only their clocks rewind.
    pub fn reset(&self) {
        self.lock().reset();
        let mut st = self.lanes.lock();
        st.busy_until.iter_mut().for_each(|t| *t = 0.0);
        st.serial_s = 0.0;
    }

    /// `true` when both handles refer to the same device.
    pub fn same_device(&self, other: &SharedDevice) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn lock(&self) -> OrderedMutexGuard<'_, TpuDevice> {
        // lock_recover: cycle/energy/communication counters are
        // monotone sums, so the worst a mid-kernel panic leaves
        // behind is a partially-charged phase — still serviceable,
        // unlike a process-wide wedge.
        self.inner.lock_recover()
    }
}

impl LaneLease {
    /// The core lane indices this lease holds, ascending.
    pub fn cores(&self) -> Vec<usize> {
        let mut c = self.cores.clone();
        c.sort_unstable();
        c
    }

    /// The device this lease's lanes belong to.
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// Charge-and-measure exactly like [`SharedDevice::timed`] —
    /// same lock, same ledger arithmetic, same returned delta — then
    /// advance the leased lanes on the lane timeline: the charge
    /// starts when the slowest leased lane last went idle and ends
    /// `dt` later. Disjoint concurrent leases therefore overlap on
    /// the timeline while the ledger still accumulates serially.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error; failed charges advance neither clock.
    pub fn timed<R>(
        &self,
        f: impl FnOnce(&mut TpuDevice) -> xai_tensor::Result<R>,
    ) -> xai_tensor::Result<(R, f64)> {
        let (value, dt) = self.device.timed(f)?;
        let mut st = self.device.lanes.lock();
        let start = self
            .cores
            .iter()
            .fold(0.0f64, |m, &i| m.max(st.busy_until[i]));
        let end = start + dt;
        for &i in &self.cores {
            st.busy_until[i] = end;
        }
        st.serial_s += dt;
        Ok((value, dt))
    }
}

impl Drop for LaneLease {
    fn drop(&mut self) {
        let mut st = self.device.lanes.lock();
        for &i in &self.cores {
            st.busy[i] = false;
        }
        drop(st);
        self.device.lanes.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_tensor::Matrix;

    fn shard(v: f64) -> Matrix<f64> {
        Matrix::filled(4, 4, v).unwrap()
    }

    #[test]
    fn clones_share_one_clock() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        let other = dev.clone();
        assert!(dev.same_device(&other));
        other
            .run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s))
            .unwrap();
        assert!(dev.wall_seconds() > 0.0);
        assert_eq!(dev.wall_seconds(), other.wall_seconds());
    }

    #[test]
    fn timed_measures_exactly_its_own_charge() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        let (out, dt) = dev
            .timed(|d| d.run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s)))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(dt > 0.0);
        assert_eq!(dev.wall_seconds(), dt);
        // A second timed region measures only its own delta.
        let (_, dt2) = dev
            .timed(|d| d.run_phase(vec![shard(2.0)], |core, s| core.matmul(&s, &s)))
            .unwrap();
        assert!((dev.wall_seconds() - dt - dt2).abs() < 1e-18);
    }

    #[test]
    fn with_gives_atomic_multi_step_access() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        let (sum, dt) = dev
            .with(|d| {
                let before = d.wall_seconds();
                let parts =
                    d.run_phase(vec![shard(1.0), shard(2.0)], |core, s| core.matmul(&s, &s))?;
                let sum = d.cross_replica_sum(&parts)?;
                Ok::<_, xai_tensor::TensorError>((sum, d.wall_seconds() - before))
            })
            .unwrap();
        assert_eq!(sum.shape(), (4, 4));
        assert!(dt > 0.0);
        assert_eq!(dev.collectives(), 1);
    }

    #[test]
    fn concurrent_phases_accumulate_deterministically() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = dev.clone();
                scope.spawn(move || {
                    handle
                        .run_phase(vec![shard(0.5)], |core, s| core.matmul(&s, &s))
                        .unwrap();
                });
            }
        });
        // Four identical one-shard phases, serialised by the lock:
        // total wall time is exactly 4x one phase regardless of
        // interleaving.
        let serial = SharedDevice::new(TpuConfig::small_test());
        for _ in 0..4 {
            serial
                .run_phase(vec![shard(0.5)], |core, s| core.matmul(&s, &s))
                .unwrap();
        }
        assert!((dev.wall_seconds() - serial.wall_seconds()).abs() < 1e-15);
    }

    #[test]
    fn poisoned_device_recovers_and_keeps_serving() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        dev.run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s))
            .unwrap();
        let before = dev.wall_seconds();
        // A worker panics while holding the device lock (`with` holds
        // it for the whole closure) — the worst case for poisoning.
        let crashing = dev.clone();
        let handle =
            std::thread::spawn(move || crashing.with(|_| panic!("worker crash mid-schedule")));
        assert!(handle.join().is_err(), "worker must have panicked");
        assert!(dev.inner.is_poisoned(), "lock must actually be poisoned");
        // Subsequent requests on every other handle still serve and
        // the ledger keeps accumulating.
        dev.run_phase(vec![shard(2.0)], |core, s| core.matmul(&s, &s))
            .unwrap();
        assert!(dev.wall_seconds() > before);
    }

    #[test]
    fn lease_routes_charges_onto_disjoint_lanes() {
        let dev = SharedDevice::with_cores(TpuConfig::small_test(), 8);
        // Two flights lease four lanes each: disjoint cores, so their
        // lane-timeline spans overlap fully while the ledger (and
        // serial_s) accumulates both charges.
        let a = dev.lease(4);
        let b = dev.lease(4);
        assert_eq!(a.cores().len(), 4);
        assert_eq!(b.cores().len(), 4);
        assert!(a.cores().iter().all(|c| !b.cores().contains(c)));
        let (_, dta) = a
            .timed(|d| d.run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s)))
            .unwrap();
        let (_, dtb) = b
            .timed(|d| d.run_phase(vec![shard(2.0)], |core, s| core.matmul(&s, &s)))
            .unwrap();
        drop(a);
        drop(b);
        assert!(dta > 0.0 && dtb > 0.0);
        // Ledger unchanged by lanes: wall time is still the serial sum.
        assert!((dev.wall_seconds() - (dta + dtb)).abs() < 1e-18);
        assert!((dev.lane_serial_seconds() - (dta + dtb)).abs() < 1e-18);
        // Overlapping disjoint leases: makespan is the slower flight.
        assert!((dev.lane_makespan_seconds() - dta.max(dtb)).abs() < 1e-18);
        assert!((dev.lane_overlap_seconds() - dta.min(dtb)).abs() < 1e-18);
    }

    #[test]
    fn sequential_leases_chain_without_overlap() {
        let dev = SharedDevice::with_cores(TpuConfig::small_test(), 8);
        for v in [1.0, 2.0, 3.0] {
            let lease = dev.lease(4);
            lease
                .timed(|d| d.run_phase(vec![shard(v)], |core, s| core.matmul(&s, &s)))
                .unwrap();
        }
        // Back-to-back flights re-lease the most-recently-busy lanes,
        // so the timeline stays serial: no phantom overlap.
        assert!(dev.lane_serial_seconds() > 0.0);
        assert!((dev.lane_makespan_seconds() - dev.lane_serial_seconds()).abs() < 1e-15);
        assert_eq!(dev.lane_overlap_seconds(), 0.0);
    }

    #[test]
    fn lease_blocks_until_lanes_free_and_clamps_want() {
        let dev = SharedDevice::with_cores(TpuConfig::small_test(), 2);
        // Asking for more lanes than the chip has clamps to the chip.
        let all = dev.lease(16);
        assert_eq!(all.cores(), vec![0, 1]);
        let waited = std::thread::scope(|scope| {
            let handle = dev.clone();
            let t = scope.spawn(move || {
                // Blocks until `all` drops, then gets a lane.
                let lease = handle.lease(1);
                lease.cores().len()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(all);
            t.join().unwrap()
        });
        assert_eq!(waited, 1);
    }

    #[test]
    fn lane_clocks_reset_with_the_device() {
        let dev = SharedDevice::with_cores(TpuConfig::small_test(), 4);
        let lease = dev.lease(2);
        lease
            .timed(|d| d.run_phase(vec![shard(1.0)], |core, s| core.matmul(&s, &s)))
            .unwrap();
        drop(lease);
        assert!(dev.lane_serial_seconds() > 0.0);
        dev.reset();
        assert_eq!(dev.lane_serial_seconds(), 0.0);
        assert_eq!(dev.lane_makespan_seconds(), 0.0);
        assert_eq!(dev.lane_overlap_seconds(), 0.0);
        assert_eq!(dev.wall_seconds(), 0.0);
    }

    #[test]
    fn reset_visible_through_all_handles() {
        let dev = SharedDevice::with_cores(TpuConfig::small_test(), 4);
        assert_eq!(dev.num_cores(), 4);
        dev.run_phase(vec![shard(0.1)], |core, s| core.matmul(&s, &s))
            .unwrap();
        let other = dev.clone();
        other.reset();
        assert_eq!(dev.wall_seconds(), 0.0);
        assert_eq!(dev.energy_pj(), 0.0);
    }
}
