//! Cross-request batching: a submission queue that coalesces work
//! arriving from concurrent threads into single device dispatches.
//!
//! The paper's §III-D multi-input parallelism assumes the batch is
//! already assembled. In a serving deployment it is not: N request
//! threads each show up with their own handful of transforms, and
//! dispatching them per-request issues O(N·phases) device phases and
//! collectives. [`BatchQueue`] closes that gap with a leader/follower
//! protocol: the first submitter of a *flight* becomes its leader,
//! waits a bounded batching window for peers (dispatching immediately
//! once [`BatchQueue::max_lanes`] work items are pending), then runs
//! the caller-supplied dispatch once over the coalesced batch —
//! typically one [`crate::TpuDevice::run_phase`] with each item on
//! its own core lane and one `cross_replica_sum` per transform stage.
//! Followers block until the flight lands and receive exactly their
//! items' results, in submission order.
//!
//! The queue is deliberately generic over work/result types so the
//! accelerator layer can route *every* kernel kind through one queue
//! without this crate knowing about plan caches or cost models.
//! [`KernelJob`]/[`KernelResult`] are the ready-made payload for that:
//! one flight can mix transform, elementwise and matmul lanes, and the
//! whole mixed flight shards across a [`crate::DevicePool`] exactly
//! like a homogeneous one.

use crate::shared::SharedDevice;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xai_sync::{LockClass, OrderedCondvar, OrderedMutex, OrderedMutexGuard};
use xai_tensor::ops::DivPolicy;
use xai_tensor::{Complex64, Matrix, Result, TensorError};

/// The flight-forming queue state. Ranked between the serving front
/// door (whose workers submit into queues) and the device locks a
/// leader charges while the flight state is briefly re-held.
static TPU_QUEUE: LockClass = LockClass::new("tpu::queue", 20);

/// A [`ManualTime`]'s clock cell — a deep leaf: a flight leader
/// reads the queue clock while holding the queue state.
static TPU_QUEUE_TIME: LockClass = LockClass::new("tpu::queue_time", 56);

/// The time source a [`BatchQueue`] measures its batching window on.
///
/// Production queues run on [`WallTime`]; deterministic tests (and the
/// serving layer's simulated-clock load suites) substitute
/// [`ManualTime`], whose `now` only moves when the test advances it —
/// so window-expiry behaviour can be pinned exactly instead of raced
/// against the host scheduler.
pub trait QueueTime: Send + Sync + std::fmt::Debug {
    /// Monotonic elapsed time since an arbitrary epoch.
    fn now(&self) -> Duration;

    /// Upper bound on the *real* time a leader may block waiting for
    /// arrivals when `remaining` window time is left on this source.
    /// Wall clocks return `remaining` (one sleep covers the window);
    /// manual clocks return a short poll slice so the leader re-reads
    /// the clock promptly after a test advances it.
    fn wait_hint(&self, remaining: Duration) -> Duration {
        remaining
    }
}

/// The default [`QueueTime`]: real monotonic wall time.
#[derive(Debug)]
pub struct WallTime {
    epoch: Instant,
}

impl WallTime {
    /// A wall-time source with its epoch at construction.
    pub fn new() -> Self {
        WallTime {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallTime {
    fn default() -> Self {
        Self::new()
    }
}

impl QueueTime for WallTime {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A manually-advanced [`QueueTime`] for deterministic window tests:
/// `now` is frozen until [`ManualTime::advance`] (or
/// [`ManualTime::set`]) moves it, so a flight's window expires exactly
/// when the test says it does, never when the host scheduler does.
///
/// Cheap to clone; clones share the same clock.
#[derive(Debug, Clone)]
pub struct ManualTime {
    now: Arc<OrderedMutex<Duration>>,
}

impl ManualTime {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `dt`.
    pub fn advance(&self, dt: Duration) {
        *self.now.lock_recover() += dt;
    }

    /// Jumps the clock to an absolute reading (must not move
    /// backwards; a backwards set is clamped to the current reading).
    pub fn set(&self, t: Duration) {
        let mut now = self.now.lock_recover();
        *now = t.max(*now);
    }
}

impl Default for ManualTime {
    fn default() -> Self {
        ManualTime {
            now: Arc::new(OrderedMutex::new(&TPU_QUEUE_TIME, Duration::ZERO)),
        }
    }
}

impl QueueTime for ManualTime {
    fn now(&self) -> Duration {
        *self.now.lock_recover()
    }

    fn wait_hint(&self, _remaining: Duration) -> Duration {
        // Poll slice: the manual clock can be advanced at any moment
        // by another thread, so the leader re-reads it every
        // millisecond of real time rather than sleeping out a window
        // that may never elapse on this source.
        Duration::from_millis(1)
    }
}

/// One lane of a kernel-generic flight: the work-item type an
/// accelerator layer routes through a single [`BatchQueue`] so one
/// coalesced dispatch can mix kernel kinds — 2-D transforms,
/// elementwise vector work and real matmuls ride the same flight and
/// shard across a [`crate::DevicePool`] together.
///
/// This type is a pure data carrier: numerics, plan caches and cost
/// models stay in the accelerator layer, so this crate keeps no
/// opinion on *how* a lane executes — only on how lanes coalesce,
/// dispatch and shard. Broadcast operands — the filter of a Hadamard
/// batch, the minuend of a difference batch — are behind [`Arc`] so a
/// whole batch ships one copy per flight, not one per lane.
#[derive(Debug, Clone)]
pub enum KernelJob {
    /// A whole 2-D Fourier transform of `x` (forward or inverse).
    Transform {
        /// The matrix to transform.
        x: Matrix<Complex64>,
        /// `true` for the forward transform, `false` for the inverse.
        forward: bool,
    },
    /// An elementwise Hadamard product `a ∘ b` on the vector units.
    Hadamard {
        /// Left operand (per-lane).
        a: Matrix<Complex64>,
        /// Right operand — typically a filter broadcast across every
        /// lane of a batch, hence shared.
        b: Arc<Matrix<Complex64>>,
    },
    /// An elementwise division `a ⊘ b` under `policy`.
    PointwiseDiv {
        /// Numerator.
        a: Matrix<Complex64>,
        /// Denominator.
        b: Matrix<Complex64>,
        /// Division-by-zero handling.
        policy: DivPolicy,
    },
    /// An elementwise difference `a − b` (the Equation-5 residual).
    Sub {
        /// Minuend — typically the observed output broadcast against
        /// every prediction of a batch, hence shared.
        a: Arc<Matrix<f64>>,
        /// Subtrahend (per-lane).
        b: Matrix<f64>,
    },
    /// A real matrix product `a · b` on the systolic MXU.
    Matmul {
        /// Left factor (`m × k`).
        a: Matrix<f64>,
        /// Right factor (`k × n`).
        b: Matrix<f64>,
    },
    /// The fused serving chain fft → hadamard → ifft → sub as a
    /// *single* lane: `re(ifft2(fft2(x) ∘ filter))` subtracted from
    /// `y`. The dependent stages pipeline on-device — the flight
    /// ships one real gather instead of four per-stage round-trips —
    /// while per-stage charges stay identical to the staged chain.
    FilterDiff {
        /// The occluded input, spatial domain.
        x: Matrix<Complex64>,
        /// Frequency-domain filter, broadcast across the batch.
        filter: Arc<Matrix<Complex64>>,
        /// Observed output (the minuend), broadcast across the batch.
        y: Arc<Matrix<f64>>,
    },
}

impl KernelJob {
    /// Short static label of the lane's kernel kind, for traces and
    /// error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            KernelJob::Transform { .. } => "transform",
            KernelJob::Hadamard { .. } => "hadamard",
            KernelJob::PointwiseDiv { .. } => "pointwise-div",
            KernelJob::Sub { .. } => "sub",
            KernelJob::Matmul { .. } => "matmul",
            KernelJob::FilterDiff { .. } => "filter-diff",
        }
    }
}

/// The result of one [`KernelJob`] lane: complex for transforms and
/// complex elementwise kernels, real for differences and matmuls.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelResult {
    /// A complex matrix (transform, Hadamard, pointwise division).
    Complex(Matrix<Complex64>),
    /// A real matrix (difference, matmul).
    Real(Matrix<f64>),
}

impl KernelResult {
    /// Unwraps the complex matrix of a transform/elementwise lane.
    ///
    /// # Panics
    ///
    /// Panics when the result is [`KernelResult::Real`] — the
    /// dispatcher produced a lane kind the submitter did not queue.
    pub fn into_complex(self) -> Matrix<Complex64> {
        match self {
            KernelResult::Complex(m) => m,
            KernelResult::Real(_) => panic!("kernel lane produced a real result, expected complex"),
        }
    }

    /// Unwraps the real matrix of a difference/matmul lane.
    ///
    /// # Panics
    ///
    /// Panics when the result is [`KernelResult::Complex`] — the
    /// dispatcher produced a lane kind the submitter did not queue.
    pub fn into_real(self) -> Matrix<f64> {
        match self {
            KernelResult::Real(m) => m,
            KernelResult::Complex(_) => {
                panic!("kernel lane produced a complex result, expected real")
            }
        }
    }
}

/// A coalescing submission queue in front of one [`SharedDevice`].
///
/// Cheap to share behind an `Arc`; see the [module docs](self) for
/// the protocol. Three knobs govern a flight:
///
/// * `window` — how long a leader waits for peers before dispatching
///   whatever is pending (a zero window dispatches immediately, which
///   disables cross-thread coalescing but keeps the code path);
/// * `max_lanes` — a flight dispatches as soon as this many work
///   items are pending, without waiting out the window. Sizing it to
///   the device core count fills every lane of one phase.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use xai_tpu::{BatchQueue, SharedDevice, TpuConfig};
///
/// let dev = SharedDevice::new(TpuConfig::small_test());
/// let queue: BatchQueue<u64, u64> = BatchQueue::new(dev, Duration::ZERO, 2);
/// let doubled = queue
///     .submit(vec![1, 2, 3], |_device, items| {
///         Ok(items.into_iter().map(|v| v * 2).collect())
///     })
///     .unwrap();
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
#[derive(Debug)]
pub struct BatchQueue<W, R> {
    device: SharedDevice,
    window: Duration,
    max_lanes: usize,
    /// The clock the batching window is measured on (wall time unless
    /// constructed through [`BatchQueue::with_time`]).
    time: Arc<dyn QueueTime>,
    state: OrderedMutex<QueueState<W, R>>,
    /// Wakes the current leader when followers add lanes.
    arrivals: OrderedCondvar,
    /// Wakes followers when a flight lands.
    completions: OrderedCondvar,
}

#[derive(Debug)]
struct QueueState<W, R> {
    /// Id of the flight currently forming.
    generation: u64,
    /// Work items of the forming flight, in submission order.
    pending: Vec<W>,
    /// When the forming flight's *first* lane was enqueued, on the
    /// queue's [`QueueTime`]. The batching window is anchored here —
    /// not at whenever the leader gets around to waiting — so a
    /// slowly-scheduled leader can never stretch the window beyond
    /// `window` for the lanes already pending.
    window_open: Option<Duration>,
    /// Submissions participating in the forming flight.
    submissions: usize,
    /// Whether the forming flight already has a leader.
    has_leader: bool,
    /// Completed flights awaiting collection, keyed by generation.
    landed: HashMap<u64, Landing<R>>,
}

#[derive(Debug)]
struct Landing<R> {
    /// Per-item result slots (taken once each) or the flight's error.
    /// Each slot carries its *own* `Result`, so a data-dependent
    /// failure in one lane fails only the submitter owning that lane;
    /// the outer `Err` is reserved for flight-wide failures (dispatch
    /// error, arity mismatch, leader panic) that hit every submitter.
    outcome: Result<Vec<Option<Result<R>>>>,
    /// Submissions that still have to collect from this landing.
    outstanding: usize,
}

impl<W: Send, R: Send> BatchQueue<W, R> {
    /// Creates a queue over `device` with the given batching `window`
    /// and early-dispatch threshold (`max_lanes` is clamped to ≥ 1),
    /// measuring the window on real wall time.
    pub fn new(device: SharedDevice, window: Duration, max_lanes: usize) -> Self {
        Self::with_time(device, window, max_lanes, Arc::new(WallTime::new()))
    }

    /// Like [`BatchQueue::new`], but the batching window is measured
    /// on the supplied [`QueueTime`] — a [`ManualTime`] makes window
    /// expiry fully deterministic for tests and simulated serving.
    pub fn with_time(
        device: SharedDevice,
        window: Duration,
        max_lanes: usize,
        time: Arc<dyn QueueTime>,
    ) -> Self {
        BatchQueue {
            device,
            window,
            max_lanes: max_lanes.max(1),
            time,
            state: OrderedMutex::new(
                &TPU_QUEUE,
                QueueState {
                    generation: 0,
                    pending: Vec::new(),
                    window_open: None,
                    submissions: 0,
                    has_leader: false,
                    landed: HashMap::new(),
                },
            ),
            arrivals: OrderedCondvar::new(),
            completions: OrderedCondvar::new(),
        }
    }

    /// The device this queue dispatches to.
    pub fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// The batching window a leader waits for peers.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The lane count that triggers dispatch before the window ends.
    pub fn max_lanes(&self) -> usize {
        self.max_lanes
    }

    /// Lanes currently enqueued in the *forming* flight (work items
    /// accepted but not yet dispatched). The serving layer reads this
    /// as device backpressure: admission control can translate a deep
    /// forming flight into an expected queueing delay and shed
    /// deadline-doomed requests before they cost anything.
    pub fn pending_lanes(&self) -> usize {
        self.lock().pending.len()
    }

    /// Submissions participating in the forming flight.
    pub fn pending_submissions(&self) -> usize {
        self.lock().submissions
    }

    /// When the forming flight's first lane was enqueued, on the
    /// queue's [`QueueTime`] — `None` while no flight is forming. The
    /// flight dispatches no later than this instant plus
    /// [`BatchQueue::window`].
    pub fn window_open_at(&self) -> Option<Duration> {
        self.lock().window_open
    }

    /// Submits `items` and blocks until their results are available,
    /// returning them in the order given. One submitter per flight —
    /// the leader — executes `dispatch` over the *whole* coalesced
    /// batch; every submitter passes an equivalent closure so it does
    /// not matter who wins. An empty submission returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates the flight's dispatch error to every participating
    /// submitter, [`TensorError::DataLength`] when `dispatch` returns
    /// a result count that does not match the batch, and
    /// [`TensorError::WorkerPanicked`] to followers whose leader
    /// panicked mid-dispatch (the panic itself resumes on the
    /// leader's thread).
    pub fn submit(
        &self,
        items: Vec<W>,
        dispatch: impl FnOnce(&SharedDevice, Vec<W>) -> Result<Vec<R>>,
    ) -> Result<Vec<R>> {
        self.submit_per_lane(items, |device, batch| {
            dispatch(device, batch).map(|results| results.into_iter().map(Ok).collect())
        })
    }

    /// Like [`BatchQueue::submit`], but `dispatch` returns a
    /// *per-lane* `Result` for each item: a data-dependent failure in
    /// one lane (a strict division by zero, say) is delivered only to
    /// the submitter whose items produced it — every other submitter
    /// of the same coalesced flight still receives its results. The
    /// outer `Result` keeps flight-wide semantics: a dispatch `Err`,
    /// an arity mismatch or a leader panic fails all submitters, as
    /// in [`BatchQueue::submit`].
    ///
    /// A submitter whose slice contains several failed lanes receives
    /// the first failed lane's error.
    ///
    /// # Errors
    ///
    /// As [`BatchQueue::submit`], plus the per-lane errors above.
    pub fn submit_per_lane(
        &self,
        items: Vec<W>,
        dispatch: impl FnOnce(&SharedDevice, Vec<W>) -> Result<Vec<Result<R>>>,
    ) -> Result<Vec<R>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let mut st = self.lock();
        let generation = st.generation;
        let offset = st.pending.len();
        let count = items.len();
        if st.pending.is_empty() {
            // First enqueue of this flight: the batching window opens
            // *now*, whoever ends up leading and however slowly they
            // reach their wait loop.
            st.window_open = Some(self.time.now());
        }
        st.pending.extend(items);
        st.submissions += 1;
        if st.has_leader {
            // Follower: wake the leader in case our lanes crossed the
            // early-dispatch threshold, then wait for the landing.
            self.arrivals.notify_all();
        } else {
            st.has_leader = true;
            st = self.run_flight(st, generation, dispatch);
        }
        self.collect(st, generation, offset, count)
    }

    /// Leader path: waits out the batching window (or `max_lanes`),
    /// closes the flight, runs `dispatch` outside the queue lock and
    /// publishes the landing.
    fn run_flight<'q>(
        &'q self,
        mut st: OrderedMutexGuard<'q, QueueState<W, R>>,
        generation: u64,
        dispatch: impl FnOnce(&SharedDevice, Vec<W>) -> Result<Vec<Result<R>>>,
    ) -> OrderedMutexGuard<'q, QueueState<W, R>> {
        // The window is anchored at the flight's FIRST enqueue (not at
        // this leader's arrival in the wait loop): lanes already
        // pending dispatch no later than `window_open + window`, even
        // when the leading thread is scheduled late. Every wake —
        // arrival notify, timeout or spurious — re-reads the queue's
        // clock, so a [`ManualTime`] drives this loop deterministically.
        while st.pending.len() < self.max_lanes {
            let now = self.time.now();
            let deadline = st.window_open.unwrap_or(now) + self.window;
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .arrivals
                .wait_timeout(st, self.time.wait_hint(deadline - now));
            st = guard;
        }
        // Close the flight: later submitters start the next one.
        let batch = std::mem::take(&mut st.pending);
        let submissions = std::mem::replace(&mut st.submissions, 0);
        let lanes = batch.len();
        st.window_open = None;
        st.generation += 1;
        st.has_leader = false;
        drop(st);

        // Dispatch outside the lock so new flights can form while the
        // device runs. A panicking dispatch still lands an error for
        // the followers (then resumes on this thread) — otherwise one
        // crashed leader would strand every follower forever.
        let outcome = match catch_unwind(AssertUnwindSafe(|| dispatch(&self.device, batch))) {
            Ok(Ok(results)) if results.len() == lanes => {
                Ok(results.into_iter().map(Some).collect())
            }
            Ok(Ok(results)) => Err(TensorError::DataLength {
                expected: lanes,
                actual: results.len(),
            }),
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                // The leader never collects after a panic, so only
                // land an error entry when followers are waiting.
                if submissions > 1 {
                    let mut st = self.lock();
                    st.landed.insert(
                        generation,
                        Landing {
                            outcome: Err(TensorError::WorkerPanicked {
                                op: "batch queue dispatch",
                            }),
                            outstanding: submissions - 1,
                        },
                    );
                    self.completions.notify_all();
                    drop(st);
                }
                resume_unwind(payload);
            }
        };
        let mut st = self.lock();
        st.landed.insert(
            generation,
            Landing {
                outcome,
                outstanding: submissions,
            },
        );
        self.completions.notify_all();
        st
    }

    /// Takes this submission's slice of its flight's results, waiting
    /// for the landing if necessary.
    fn collect(
        &self,
        mut st: OrderedMutexGuard<'_, QueueState<W, R>>,
        generation: u64,
        offset: usize,
        count: usize,
    ) -> Result<Vec<R>> {
        loop {
            if let Some(landing) = st.landed.get_mut(&generation) {
                let taken = match &mut landing.outcome {
                    // Per-lane results: a failed lane fails only the
                    // submitter owning it (first failure wins within
                    // one submission's slice).
                    Ok(slots) => slots[offset..offset + count]
                        .iter_mut()
                        .map(|s| s.take().expect("each result slot is taken exactly once"))
                        .collect(),
                    Err(e) => Err(e.clone()),
                };
                landing.outstanding -= 1;
                if landing.outstanding == 0 {
                    st.landed.remove(&generation);
                }
                return taken;
            }
            st = self.completions.wait(st);
        }
    }

    fn lock(&self) -> OrderedMutexGuard<'_, QueueState<W, R>> {
        self.state.lock_recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpuConfig;
    use std::sync::Arc;

    fn queue(window_ms: u64, max_lanes: usize) -> BatchQueue<u64, u64> {
        BatchQueue::new(
            SharedDevice::new(TpuConfig::small_test()),
            Duration::from_millis(window_ms),
            max_lanes,
        )
    }

    #[test]
    fn empty_submission_returns_without_dispatch() {
        let q = queue(0, 4);
        let out = q
            .submit(vec![], |_, _| panic!("must not dispatch an empty flight"))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_submitter_results_in_order() {
        let q = queue(0, 8);
        let out = q
            .submit(vec![3, 1, 4, 1, 5], |_, items| {
                Ok(items.into_iter().map(|v| v * 10).collect())
            })
            .unwrap();
        assert_eq!(out, vec![30, 10, 40, 10, 50]);
    }

    #[test]
    fn dispatch_errors_propagate() {
        let q = queue(0, 8);
        let err = q
            .submit(vec![1], |_, _| {
                Err::<Vec<u64>, _>(TensorError::EmptyDimension)
            })
            .unwrap_err();
        assert_eq!(err, TensorError::EmptyDimension);
        // The queue still serves after an errored flight.
        assert_eq!(q.submit(vec![2], |_, v| Ok(v)).unwrap(), vec![2]);
    }

    #[test]
    fn wrong_result_arity_is_an_error_not_a_hang() {
        let q = queue(0, 8);
        let err = q.submit(vec![1, 2], |_, _| Ok(vec![7])).unwrap_err();
        assert!(matches!(
            err,
            TensorError::DataLength {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn concurrent_submissions_coalesce_into_one_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let threads = 4usize;
        let lanes_per = 3usize;
        // max_lanes equals the total, so the flight dispatches the
        // moment everyone has submitted — deterministic coalescing
        // (the long window is only the straggler guard).
        let q = Arc::new(queue(60_000, threads * lanes_per));
        let dispatches = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let q = Arc::clone(&q);
                    let dispatches = &dispatches;
                    scope.spawn(move || {
                        let items: Vec<u64> = (0..lanes_per as u64).map(|i| t * 100 + i).collect();
                        let expect: Vec<u64> = items.iter().map(|v| v + 1).collect();
                        let got = q
                            .submit(items, |_, batch| {
                                dispatches.fetch_add(1, Ordering::SeqCst);
                                Ok(batch.into_iter().map(|v| v + 1).collect())
                            })
                            .unwrap();
                        assert_eq!(got, expect, "each submitter gets exactly its own results");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(
            dispatches.load(Ordering::SeqCst),
            1,
            "all submissions must ride one coalesced flight"
        );
    }

    #[test]
    fn window_expires_at_first_enqueue_plus_window_on_the_queue_clock() {
        let time = ManualTime::new();
        time.set(Duration::from_secs(10));
        let q: Arc<BatchQueue<u64, u64>> = Arc::new(BatchQueue::with_time(
            SharedDevice::new(TpuConfig::small_test()),
            Duration::from_secs(5),
            64,
            Arc::new(time.clone()),
        ));
        let dispatched_at = Arc::new(OrderedMutex::<Option<Duration>>::default());
        std::thread::scope(|scope| {
            let leader = {
                let q = Arc::clone(&q);
                let time = time.clone();
                let dispatched_at = Arc::clone(&dispatched_at);
                scope.spawn(move || {
                    q.submit(vec![1], move |_, v| {
                        let at = time.now();
                        *dispatched_at.lock_recover() = Some(at);
                        Ok(v)
                    })
                })
            };
            // The first enqueue anchors the window at t = 10 s.
            while q.pending_lanes() < 1 {
                std::thread::yield_now();
            }
            assert_eq!(q.window_open_at(), Some(Duration::from_secs(10)));

            // A follower arriving at t = 13 s must not re-anchor it.
            time.set(Duration::from_secs(13));
            let follower = {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    q.submit(vec![2], |_, _| unreachable!("the follower never leads"))
                })
            };
            while q.pending_lanes() < 2 {
                std::thread::yield_now();
            }
            assert_eq!(q.window_open_at(), Some(Duration::from_secs(10)));

            // While the queue clock is frozen short of the deadline the
            // flight stays open no matter how much real time passes...
            std::thread::sleep(Duration::from_millis(30));
            assert_eq!(q.pending_lanes(), 2, "window must not expire on wall time");

            // ...and crossing first-enqueue + window releases it.
            time.set(Duration::from_secs(15));
            assert_eq!(leader.join().unwrap().unwrap(), vec![1]);
            assert_eq!(follower.join().unwrap().unwrap(), vec![2]);
        });
        assert_eq!(
            *dispatched_at.lock_recover(),
            Some(Duration::from_secs(15)),
            "dispatch is pinned at first-enqueue + window on the queue clock"
        );
        assert_eq!(
            q.window_open_at(),
            None,
            "the window anchor clears when the flight closes"
        );
    }

    #[test]
    fn leader_panic_fails_followers_instead_of_stranding_them() {
        let q = Arc::new(queue(60_000, 2));
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        // Stagger so thread 0 reliably leads.
                        if i == 1 {
                            std::thread::sleep(Duration::from_millis(50));
                        }
                        q.submit(vec![i], |_, _| panic!("leader crash"))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| ()))
                .collect::<Vec<_>>()
        });
        // Exactly one thread led the flight and re-raised the panic;
        // the other observed WorkerPanicked instead of hanging.
        let panicked = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(panicked, 1, "exactly one leader panics: {results:?}");
        let follower = results
            .into_iter()
            .find_map(|r| r.ok())
            .expect("one follower result");
        assert!(matches!(
            follower.unwrap_err(),
            TensorError::WorkerPanicked { .. }
        ));
        // And the queue recovers for the next flight (two lanes so
        // the early-dispatch threshold fires instead of the window).
        assert_eq!(q.submit(vec![8, 9], |_, v| Ok(v)).unwrap(), vec![8, 9]);
    }

    #[test]
    fn sequential_flights_advance_generations() {
        let q = queue(0, 1);
        for round in 0..5u64 {
            let out = q.submit(vec![round], |_, v| Ok(v)).unwrap();
            assert_eq!(out, vec![round]);
        }
    }

    #[test]
    fn kernel_job_kinds_are_labelled() {
        let x = Matrix::filled(2, 2, Complex64::ONE).unwrap();
        let r = Matrix::filled(2, 2, 1.0).unwrap();
        let jobs = [
            KernelJob::Transform {
                x: x.clone(),
                forward: true,
            },
            KernelJob::Hadamard {
                a: x.clone(),
                b: Arc::new(x.clone()),
            },
            KernelJob::PointwiseDiv {
                a: x.clone(),
                b: x,
                policy: DivPolicy::Clamp { floor: 1e-12 },
            },
            KernelJob::Sub {
                a: Arc::new(r.clone()),
                b: r.clone(),
            },
            KernelJob::Matmul {
                a: r.clone(),
                b: r.clone(),
            },
            KernelJob::FilterDiff {
                x: Matrix::filled(2, 2, Complex64::ONE).unwrap(),
                filter: Arc::new(Matrix::filled(2, 2, Complex64::ONE).unwrap()),
                y: Arc::new(r),
            },
        ];
        let kinds: Vec<_> = jobs.iter().map(KernelJob::kind).collect();
        assert_eq!(
            kinds,
            vec![
                "transform",
                "hadamard",
                "pointwise-div",
                "sub",
                "matmul",
                "filter-diff"
            ]
        );
    }

    /// Satellite: a data-dependent error in one lane fails only the
    /// submitter owning that lane — the other seven submitters of the
    /// same coalesced flight still land their results.
    #[test]
    fn per_lane_error_fails_only_its_submitter() {
        let threads = 8usize;
        let q: Arc<BatchQueue<u64, u64>> = Arc::new(queue(60_000, threads));
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        q.submit_per_lane(vec![t], |_, batch| {
                            Ok(batch
                                .into_iter()
                                .map(|v| {
                                    if v == 3 {
                                        // The poisoned lane: a strict
                                        // ÷0-style data error.
                                        Err(TensorError::DivisionByZero { index: 0 })
                                    } else {
                                        Ok(v * 2)
                                    }
                                })
                                .collect())
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for (t, r) in results.iter().enumerate() {
            if t == 3 {
                assert_eq!(
                    r.clone().unwrap_err(),
                    TensorError::DivisionByZero { index: 0 }
                );
            } else {
                assert_eq!(r.clone().unwrap(), vec![t as u64 * 2], "lane {t}");
            }
        }
    }

    /// A submission spanning several lanes receives its *first*
    /// failed lane's error; flight-wide errors still hit everyone.
    #[test]
    fn per_lane_first_error_wins_within_a_submission() {
        let q = queue(0, 8);
        let err = q
            .submit_per_lane(vec![1u64, 2, 3], |_, batch| {
                Ok(batch
                    .into_iter()
                    .map(|v| {
                        if v >= 2 {
                            Err(TensorError::EmptyDimension)
                        } else {
                            Ok(v)
                        }
                    })
                    .collect())
            })
            .unwrap_err();
        assert_eq!(err, TensorError::EmptyDimension);
        // Flight-wide error path unchanged.
        let err = q
            .submit_per_lane(vec![1u64], |_, _| {
                Err::<Vec<Result<u64>>, _>(TensorError::DivisionByZero { index: 0 })
            })
            .unwrap_err();
        assert_eq!(err, TensorError::DivisionByZero { index: 0 });
    }

    #[test]
    fn kernel_results_unwrap_by_kind() {
        let c = Matrix::filled(2, 2, Complex64::I).unwrap();
        let r = Matrix::filled(2, 2, 3.0).unwrap();
        assert_eq!(
            KernelResult::Complex(c.clone()).into_complex().as_slice(),
            c.as_slice()
        );
        assert_eq!(
            KernelResult::Real(r.clone()).into_real().as_slice(),
            r.as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "expected complex")]
    fn wrong_kind_unwrap_panics() {
        KernelResult::Real(Matrix::filled(1, 1, 0.0).unwrap()).into_complex();
    }

    /// The queue is payload-generic: a mixed-kind flight of
    /// [`KernelJob`] lanes coalesces and returns per-lane results in
    /// submission order, whatever the mix.
    #[test]
    fn mixed_kernel_jobs_ride_one_queue() {
        use xai_tensor::ops;
        let dev = SharedDevice::new(TpuConfig::small_test());
        let q: BatchQueue<KernelJob, KernelResult> = BatchQueue::new(dev, Duration::ZERO, 8);
        let x = Matrix::filled(2, 2, Complex64::new(2.0, 1.0)).unwrap();
        let r = Matrix::filled(2, 2, 4.0).unwrap();
        let out = q
            .submit(
                vec![
                    KernelJob::Hadamard {
                        a: x.clone(),
                        b: Arc::new(x.clone()),
                    },
                    KernelJob::Sub {
                        a: Arc::new(r.clone()),
                        b: r.clone(),
                    },
                ],
                |_, jobs| {
                    jobs.into_iter()
                        .map(|job| match job {
                            KernelJob::Hadamard { a, b } => {
                                Ok(KernelResult::Complex(ops::hadamard(&a, &b)?))
                            }
                            KernelJob::Sub { a, b } => Ok(KernelResult::Real(ops::sub(&a, &b)?)),
                            other => panic!("unqueued kind {}", other.kind()),
                        })
                        .collect()
                },
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        let had = out[0].clone().into_complex();
        assert_eq!(
            had[(0, 0)],
            Complex64::new(2.0, 1.0) * Complex64::new(2.0, 1.0)
        );
        assert_eq!(out[1].clone().into_real()[(1, 1)], 0.0);
    }

    #[test]
    fn dispatch_sees_the_shared_device() {
        let dev = SharedDevice::new(TpuConfig::small_test());
        let q: BatchQueue<f64, f64> = BatchQueue::new(dev.clone(), Duration::ZERO, 4);
        let out = q
            .submit(vec![0.5, 1.5], |device, items| {
                use xai_tensor::Matrix;
                let shards: Vec<Matrix<f64>> = items
                    .iter()
                    .map(|&v| Matrix::filled(4, 4, v).unwrap())
                    .collect();
                let sums = device.run_phase(shards, |core, s| core.matmul(&s, &s))?;
                Ok(sums.iter().map(|m| m[(0, 0)]).collect())
            })
            .unwrap();
        // The core's matmul carries real int8 quantisation error, so
        // compare approximately.
        assert!(
            (out[0] - 1.0).abs() < 0.05 && (out[1] - 9.0).abs() < 0.05,
            "{out:?}"
        );
        assert!(dev.wall_seconds() > 0.0, "dispatch charged the device");
        assert!(q.device().same_device(&dev));
    }
}
