//! Multi-core TPU device with collective communication.
//!
//! Implements the two acceleration activities of the paper: data
//! decomposition (each core works on an independent shard,
//! [`TpuDevice::run_phase`]) and multi-input parallelism, with the
//! `cross_replica_sum` reassembly collective of §III-D charged at
//! `α + β·bytes`.

use crate::config::TpuConfig;
use crate::core::TpuCore;
use crate::trace::{Event, OpKind};
use xai_tensor::{Complex64, Matrix, Result, Scalar, TensorError};

/// Wall-clock accounting for a parallel phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTime {
    /// Longest per-core busy time in the phase, seconds.
    pub compute_s: f64,
    /// Collective-communication time in the phase, seconds.
    pub comm_s: f64,
}

impl PhaseTime {
    /// Total phase wall time.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// A simulated multi-core TPU.
///
/// Work dispatched through [`TpuDevice::run_phase`] executes
/// sequentially on the host but is *timed* as if the cores ran
/// concurrently: the phase's wall time is the maximum per-core busy
/// time, plus any collective cost.
///
/// # Examples
///
/// ```
/// use xai_tpu::{TpuConfig, TpuDevice};
/// use xai_tensor::Matrix;
///
/// # fn main() -> Result<(), xai_tensor::TensorError> {
/// let mut dev = TpuDevice::new(TpuConfig::small_test()); // 2 cores
/// let shards: Vec<Matrix<f64>> = (0..2)
///     .map(|i| Matrix::filled(4, 4, i as f64 + 0.25))
///     .collect::<Result<_, _>>()?;
/// let outs = dev.run_phase(shards, |core, shard| core.matmul(&shard, &shard))?;
/// assert_eq!(outs.len(), 2);
/// assert!(dev.wall_seconds() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TpuDevice {
    cfg: TpuConfig,
    cores: Vec<TpuCore>,
    wall_seconds: f64,
    comm_seconds: f64,
    collectives: u64,
    last_phase: PhaseTime,
}

impl TpuDevice {
    /// Creates a device with `cfg.cores` cores.
    pub fn new(cfg: TpuConfig) -> Self {
        let cores = (0..cfg.cores)
            .map(|i| TpuCore::with_id(cfg.clone(), i))
            .collect();
        TpuDevice {
            cfg,
            cores,
            wall_seconds: 0.0,
            comm_seconds: 0.0,
            collectives: 0,
            last_phase: PhaseTime::default(),
        }
    }

    /// Creates a device overriding the configured core count — used by
    /// the core-count ablation (A2 in DESIGN.md).
    pub fn with_cores(mut cfg: TpuConfig, cores: usize) -> Self {
        cfg.cores = cores.max(1);
        Self::new(cfg)
    }

    /// Device configuration.
    pub fn config(&self) -> &TpuConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Immutable view of the cores.
    pub fn cores(&self) -> &[TpuCore] {
        &self.cores
    }

    /// Mutable access to one core (single-core schedules).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_cores()`.
    pub fn core_mut(&mut self, i: usize) -> &mut TpuCore {
        &mut self.cores[i]
    }

    /// Accumulated wall time across all phases, seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }

    /// Accumulated collective-communication time, seconds.
    pub fn comm_seconds(&self) -> f64 {
        self.comm_seconds
    }

    /// Number of collectives issued.
    pub fn collectives(&self) -> u64 {
        self.collectives
    }

    /// Timing of the most recent [`TpuDevice::run_phase`] /
    /// collective pair: compute time of the phase and communication
    /// time of any collective issued since.
    pub fn last_phase(&self) -> PhaseTime {
        self.last_phase
    }

    /// Total energy across cores, picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.cores.iter().map(TpuCore::energy_pj).sum()
    }

    /// Zeroes all core counters and device clocks.
    pub fn reset(&mut self) {
        for c in &mut self.cores {
            c.reset();
        }
        self.wall_seconds = 0.0;
        self.comm_seconds = 0.0;
        self.collectives = 0;
        self.last_phase = PhaseTime::default();
    }

    /// Executes one data-decomposition phase: work item `i` runs on
    /// core `i % cores`. The phase's wall-clock contribution is the
    /// *maximum* per-core busy-time delta (cores run concurrently).
    ///
    /// # Errors
    ///
    /// Returns the first error produced by `f`, or
    /// [`TensorError::EmptyDimension`] for an empty work list.
    pub fn run_phase<W, R>(
        &mut self,
        work: Vec<W>,
        mut f: impl FnMut(&mut TpuCore, W) -> Result<R>,
    ) -> Result<Vec<R>> {
        if work.is_empty() {
            return Err(TensorError::EmptyDimension);
        }
        let n_cores = self.cores.len();
        let before: Vec<u64> = self.cores.iter().map(TpuCore::elapsed_cycles).collect();
        let mut results = Vec::with_capacity(work.len());
        for (i, w) in work.into_iter().enumerate() {
            let core = &mut self.cores[i % n_cores];
            results.push(f(core, w)?);
        }
        let max_delta = self
            .cores
            .iter()
            .zip(&before)
            .map(|(c, &b)| c.elapsed_cycles() - b)
            .max()
            .unwrap_or(0);
        let compute_s = self.cfg.cycles_to_seconds(max_delta);
        self.wall_seconds += compute_s;
        self.last_phase = PhaseTime {
            compute_s,
            comm_s: 0.0,
        };
        Ok(results)
    }

    /// `cross_replica_sum` over per-core partial matrices: returns
    /// their elementwise sum and charges one collective of the
    /// partial's byte size (§III-D: "required at every iteration of
    /// \[the\] reassembly process to compute the summation of the
    /// partial matrices across the cores").
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for no partials and
    /// [`TensorError::ShapeMismatch`] for inconsistent shapes.
    pub fn cross_replica_sum<T: Scalar>(&mut self, partials: &[Matrix<T>]) -> Result<Matrix<T>> {
        let first = partials.first().ok_or(TensorError::EmptyDimension)?;
        let mut acc = first.clone();
        for p in &partials[1..] {
            acc = acc.zip_with(p, |a, b| a + b)?;
        }
        let bytes = (acc.len() * std::mem::size_of::<T>()) as u64;
        let cost = self.charge_collective_cost(bytes as usize);
        // Attribute the event to core 0's trace for visibility.
        if let Some(c0) = self.cores.first_mut() {
            let cycles = (cost * self.cfg.clock_hz) as u64;
            c0.trace_collective(Event {
                kind: OpKind::Collective,
                label: format!("cross_replica_sum {bytes} B x{}", partials.len()),
                cycles,
                bytes,
                ops: acc.len() as u64 * partials.len() as u64,
            });
        }
        Ok(acc)
    }

    /// Executes a compiled [`crate::Program`] once per input set,
    /// inputs distributed round-robin across cores — the §III-D
    /// multi-input parallelism at the ISA level. The phase wall time
    /// is the slowest core's, as in [`TpuDevice::run_phase`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for an empty batch and
    /// propagates program validation/execution errors.
    pub fn execute_batch(
        &mut self,
        program: &crate::Program,
        batches: Vec<Vec<(crate::Slot, Matrix<Complex64>)>>,
    ) -> Result<Vec<Matrix<Complex64>>> {
        self.run_phase(batches, |core, inputs| core.execute(program, &inputs))
    }

    /// Charges one `cross_replica_sum`-shaped collective of `bytes`
    /// without materialising a result — used by schedulers that model
    /// the reassembly traffic of a transform whose numeric result is
    /// computed on the fast host path.
    pub fn charge_collective(&mut self, bytes: usize) {
        self.charge_collective_cost(bytes);
    }

    /// The one place a device-level collective charges its clocks.
    /// The device's cores sit one pod of the configured
    /// [`crate::Topology`] apart, so the collective is priced as a
    /// single intra-pod step — with the default flat crossbar and no
    /// per-link override that is bit-for-bit the seed
    /// [`TpuConfig::cross_replica_cost_s`] charge.
    fn charge_collective_cost(&mut self, bytes: usize) -> f64 {
        let cost = self.cfg.topology.intra_pod_cost_s(&self.cfg, bytes);
        self.comm_seconds += cost;
        self.wall_seconds += cost;
        self.collectives += 1;
        self.last_phase.comm_s += cost;
        cost
    }

    /// Advances the device wall clock by externally-accounted work
    /// (e.g. a roofline charge for layers running outside the core
    /// model). Negative durations are ignored.
    pub fn charge_external_seconds(&mut self, seconds: f64) {
        if seconds > 0.0 {
            self.wall_seconds += seconds;
        }
    }

    /// Convenience: gathers row shards from cores (Algorithm 1's
    /// "merge results") and charges one collective for the traffic.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for an empty shard list
    /// or [`TensorError::ShapeMismatch`] for inconsistent widths.
    pub fn gather_rows(&mut self, shards: &[Matrix<Complex64>]) -> Result<Matrix<Complex64>> {
        let merged = Matrix::vstack(shards)?;
        let bytes = merged.len() * std::mem::size_of::<Complex64>();
        self.charge_collective_cost(bytes);
        Ok(merged)
    }
}

impl TpuCore {
    /// Appends a collective event to this core's trace (device
    /// internal).
    pub(crate) fn trace_collective(&mut self, event: Event) {
        self.trace_push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(v: f64) -> Matrix<f64> {
        Matrix::filled(4, 4, v).unwrap()
    }

    #[test]
    fn device_has_configured_cores() {
        let dev = TpuDevice::new(TpuConfig::small_test());
        assert_eq!(dev.num_cores(), 2);
        let dev = TpuDevice::with_cores(TpuConfig::small_test(), 8);
        assert_eq!(dev.num_cores(), 8);
        let dev0 = TpuDevice::with_cores(TpuConfig::small_test(), 0);
        assert_eq!(dev0.num_cores(), 1);
    }

    #[test]
    fn run_phase_distributes_round_robin() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        let work: Vec<Matrix<f64>> = (0..4).map(|i| shard(i as f64 * 0.1)).collect();
        let results = dev.run_phase(work, |core, w| core.matmul(&w, &w)).unwrap();
        assert_eq!(results.len(), 4);
        // Both cores must have been used (2 items each).
        assert!(dev.cores()[0].elapsed_cycles() > 0);
        assert!(dev.cores()[1].elapsed_cycles() > 0);
    }

    #[test]
    fn phase_wall_time_is_max_not_sum() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        let work: Vec<Matrix<f64>> = (0..2).map(|_| shard(0.5)).collect();
        dev.run_phase(work, |core, w| core.matmul(&w, &w)).unwrap();
        let per_core = dev.cores()[0].elapsed_seconds();
        // Two equal items on two cores: wall ≈ one item's time, not two.
        assert!((dev.wall_seconds() - per_core).abs() < per_core * 0.5 + 1e-12);
        let sum: f64 = dev.cores().iter().map(TpuCore::elapsed_seconds).sum();
        assert!(dev.wall_seconds() < sum);
    }

    #[test]
    fn empty_phase_rejected() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        let r = dev.run_phase(Vec::<Matrix<f64>>::new(), |core, w| core.matmul(&w, &w));
        assert!(r.is_err());
    }

    #[test]
    fn cross_replica_sum_adds_partials() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        let partials = vec![shard(1.0), shard(2.0), shard(3.0)];
        let sum = dev.cross_replica_sum(&partials).unwrap();
        assert_eq!(sum[(2, 2)], 6.0);
        assert_eq!(dev.collectives(), 1);
        assert!(dev.comm_seconds() >= dev.config().link_latency_s);
    }

    #[test]
    fn cross_replica_sum_shape_mismatch() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        let partials = vec![shard(1.0), Matrix::filled(3, 3, 1.0).unwrap()];
        assert!(dev.cross_replica_sum(&partials).is_err());
        assert!(dev.cross_replica_sum::<f64>(&[]).is_err());
    }

    #[test]
    fn gather_rows_merges_and_charges() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        let a = Matrix::filled(2, 3, Complex64::ONE).unwrap();
        let b = Matrix::filled(1, 3, Complex64::I).unwrap();
        let merged = dev.gather_rows(&[a, b]).unwrap();
        assert_eq!(merged.shape(), (3, 3));
        assert_eq!(merged[(2, 0)], Complex64::I);
        assert_eq!(dev.collectives(), 1);
    }

    #[test]
    fn more_cores_reduce_phase_time() {
        let work = |n: usize| -> Vec<Matrix<f64>> {
            (0..8)
                .map(|_| shard(0.5))
                .collect::<Vec<_>>()
                .into_iter()
                .take(n)
                .collect()
        };
        let mut d2 = TpuDevice::with_cores(TpuConfig::small_test(), 2);
        d2.run_phase(work(8), |c, w| c.matmul(&w, &w)).unwrap();
        let mut d8 = TpuDevice::with_cores(TpuConfig::small_test(), 8);
        d8.run_phase(work(8), |c, w| c.matmul(&w, &w)).unwrap();
        assert!(d8.wall_seconds() < d2.wall_seconds());
    }

    #[test]
    fn reset_zeroes_device() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        dev.run_phase(vec![shard(0.1)], |c, w| c.matmul(&w, &w))
            .unwrap();
        dev.cross_replica_sum(&[shard(1.0)]).unwrap();
        dev.reset();
        assert_eq!(dev.wall_seconds(), 0.0);
        assert_eq!(dev.collectives(), 0);
        assert_eq!(dev.energy_pj(), 0.0);
    }

    #[test]
    fn execute_batch_runs_program_per_input() {
        use crate::isa::{Instruction, Program};
        // out = a ◦ a for each input, on whichever core gets it.
        let program = Program::new(2, vec![Instruction::Hadamard { a: 0, b: 0, dst: 1 }], 1);
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        let batches: Vec<Vec<(usize, Matrix<Complex64>)>> = (1..=4)
            .map(|i| {
                vec![(
                    0usize,
                    Matrix::filled(2, 2, Complex64::from_real(i as f64)).unwrap(),
                )]
            })
            .collect();
        let outs = dev.execute_batch(&program, batches).unwrap();
        assert_eq!(outs.len(), 4);
        for (i, out) in outs.iter().enumerate() {
            let v = (i + 1) as f64;
            assert_eq!(out[(0, 0)], Complex64::from_real(v * v));
        }
        assert!(dev.wall_seconds() > 0.0);
    }

    #[test]
    fn last_phase_reports_compute_and_comm() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        dev.run_phase(vec![shard(0.5)], |c, w| c.matmul(&w, &w))
            .unwrap();
        let phase = dev.last_phase();
        assert!(phase.compute_s > 0.0);
        assert_eq!(phase.comm_s, 0.0);
        dev.cross_replica_sum(&[shard(1.0), shard(2.0)]).unwrap();
        let phase = dev.last_phase();
        assert!(phase.comm_s > 0.0);
        assert!((phase.total_s() - phase.compute_s - phase.comm_s).abs() < 1e-15);
    }

    #[test]
    fn energy_sums_across_cores() {
        let mut dev = TpuDevice::new(TpuConfig::small_test());
        dev.run_phase(vec![shard(0.1), shard(0.2)], |c, w| c.matmul(&w, &w))
            .unwrap();
        let total: f64 = dev.cores().iter().map(TpuCore::energy_pj).sum();
        assert_eq!(dev.energy_pj(), total);
        assert!(total > 0.0);
    }
}
