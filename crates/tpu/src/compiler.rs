//! Compiler from the paper's pipeline to device [`Program`]s.
//!
//! The paper's efficiency argument (§I contribution 2) is that the
//! interpretation procedure becomes "a simple computation equivalent
//! to one forward pass" — i.e. one straight-line device program with
//! no host round trips. This module builds those programs:
//!
//! * [`compile_fft2d`] — the two-stage matrix-form transform
//!   `X = (W_M · x) · W_N` (Equations 10–13);
//! * [`compile_distillation`] — the full closed-form solve
//!   `F(K) = F(Y) ⊘ F(X)` (Equations 3–4), spectra in, kernel
//!   spectrum out;
//! * [`compile_contribution`] — one perturbation's
//!   `Y − F⁻¹(F(X′) ◦ F(K))` (Equation 5).
//!
//! Programs take DFT matrices as register inputs — exactly how the
//! TPU implementation works (the transform matrices are weights, the
//! data streams through).

use crate::isa::{Instruction, Program, Slot};
use xai_tensor::ops::DivPolicy;

/// Register convention of a compiled 2-D transform:
/// input `x` in slot 0, `W_M` in slot 1, `W_N` in slot 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fft2dSlots {
    /// Input matrix register.
    pub input: Slot,
    /// Row-transform DFT matrix (`W_M`, left factor).
    pub w_rows: Slot,
    /// Column-transform DFT matrix (`W_N`, right factor).
    pub w_cols: Slot,
}

impl Default for Fft2dSlots {
    fn default() -> Self {
        Fft2dSlots {
            input: 0,
            w_rows: 1,
            w_cols: 2,
        }
    }
}

/// Compiles `X = (W_M · x) · W_N` into a 5-register program.
///
/// Seed registers per [`Fft2dSlots`]; the result is returned from the
/// program's output register.
pub fn compile_fft2d(slots: Fft2dSlots) -> Program {
    let tmp = 3;
    let out = 4;
    Program::new(
        5,
        vec![
            Instruction::MatMul {
                a: slots.w_rows,
                b: slots.input,
                dst: tmp,
            },
            Instruction::MatMul {
                a: tmp,
                b: slots.w_cols,
                dst: out,
            },
        ],
        out,
    )
}

/// Compiles the closed-form distillation solve (Equation 4), taking
/// *spatial-domain* `X` and `Y` plus forward/inverse DFT matrices:
///
/// ```text
/// F(X) = (W·X)·W ;  F(Y) = (W·Y)·W
/// F(K) = F(Y) ⊘ F(X)
/// K    = (W⁻¹·F(K))·W⁻¹
/// ```
///
/// Register convention: 0 = X, 1 = Y, 2 = W (forward DFT matrix),
/// 3 = W⁻¹ (inverse DFT matrix). Square inputs only (one shared DFT
/// matrix per direction).
pub fn compile_distillation(policy: DivPolicy) -> Program {
    let (x, y, w, w_inv) = (0, 1, 2, 3);
    let (t0, fx, fy, fk, t1, k_out) = (4, 5, 6, 7, 8, 9);
    Program::new(
        10,
        vec![
            // F(X)
            Instruction::MatMul {
                a: w,
                b: x,
                dst: t0,
            },
            Instruction::MatMul {
                a: t0,
                b: w,
                dst: fx,
            },
            // F(Y)
            Instruction::MatMul {
                a: w,
                b: y,
                dst: t0,
            },
            Instruction::MatMul {
                a: t0,
                b: w,
                dst: fy,
            },
            // F(K) = F(Y) ⊘ F(X)
            Instruction::PointwiseDiv {
                a: fy,
                b: fx,
                dst: fk,
                policy,
            },
            // K = F⁻¹(F(K))
            Instruction::MatMul {
                a: w_inv,
                b: fk,
                dst: t1,
            },
            Instruction::MatMul {
                a: t1,
                b: w_inv,
                dst: k_out,
            },
        ],
        k_out,
    )
}

/// Compiles one contribution evaluation (Equation 5): given the
/// occluded input `X′`, the kernel spectrum `F(K)`, the reference
/// output `Y`, and the DFT matrices, computes `Y − F⁻¹(F(X′)◦F(K))`.
///
/// Register convention: 0 = X′, 1 = F(K), 2 = Y, 3 = W, 4 = W⁻¹.
pub fn compile_contribution() -> Program {
    let (x_occluded, f_kernel, y_ref, w, w_inv) = (0, 1, 2, 3, 4);
    let (t0, fx, prod, t1, pred, diff) = (5, 6, 7, 8, 9, 10);
    Program::new(
        11,
        vec![
            Instruction::MatMul {
                a: w,
                b: x_occluded,
                dst: t0,
            },
            Instruction::MatMul {
                a: t0,
                b: w,
                dst: fx,
            },
            Instruction::Hadamard {
                a: fx,
                b: f_kernel,
                dst: prod,
            },
            Instruction::MatMul {
                a: w_inv,
                b: prod,
                dst: t1,
            },
            Instruction::MatMul {
                a: t1,
                b: w_inv,
                dst: pred,
            },
            Instruction::Sub {
                a: y_ref,
                b: pred,
                dst: diff,
            },
        ],
        diff,
    )
}

/// Compiles a whole batch of contribution evaluations as ONE
/// straight-line program — the ISA-level witness of the fused
/// filter-diff flight: `lanes` occluded inputs share the kernel
/// spectrum, reference output and DFT matrices, and every lane's
/// `Y − F⁻¹(F(X′ᵢ)◦F(K))` chain is emitted back-to-back with no host
/// round trip between lanes.
///
/// Register convention: 0 = F(K), 1 = Y, 2 = W, 3 = W⁻¹, then lane
/// `i`'s occluded input at `4 + i`. Each lane's difference lands in
/// its own register (`4 + lanes + 6·i + 5`); the program's declared
/// output is the **last** lane's difference.
///
/// # Panics
///
/// Panics if `lanes == 0` — an empty flight has no program.
pub fn compile_contribution_batch(lanes: usize) -> Program {
    assert!(lanes > 0, "compile_contribution_batch requires lanes > 0");
    let (f_kernel, y_ref, w, w_inv) = (0, 1, 2, 3);
    let temps = 4 + lanes;
    let mut instructions = Vec::with_capacity(6 * lanes);
    let mut last_diff = 0;
    for i in 0..lanes {
        let x_occluded = 4 + i;
        let base = temps + 6 * i;
        let (t0, fx, prod, t1, pred, diff) =
            (base, base + 1, base + 2, base + 3, base + 4, base + 5);
        instructions.extend([
            Instruction::MatMul {
                a: w,
                b: x_occluded,
                dst: t0,
            },
            Instruction::MatMul {
                a: t0,
                b: w,
                dst: fx,
            },
            Instruction::Hadamard {
                a: fx,
                b: f_kernel,
                dst: prod,
            },
            Instruction::MatMul {
                a: w_inv,
                b: prod,
                dst: t1,
            },
            Instruction::MatMul {
                a: t1,
                b: w_inv,
                dst: pred,
            },
            Instruction::Sub {
                a: y_ref,
                b: pred,
                dst: diff,
            },
        ]);
        last_diff = diff;
    }
    Program::new(temps + 6 * lanes, instructions, last_diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpuConfig;
    use crate::core::TpuCore;
    use xai_tensor::{Complex64, Matrix};

    /// Forward DFT matrix (backward norm), built locally to keep the
    /// tpu crate free of a fourier dependency.
    fn dft_matrix(n: usize, inverse: bool) -> Matrix<Complex64> {
        let scale = if inverse { 1.0 / n as f64 } else { 1.0 };
        Matrix::from_fn(n, n, |j, k| {
            let jk = (j * k) as i64;
            let w = Complex64::twiddle(if inverse { -jk } else { jk }, n);
            w.scale(scale)
        })
        .expect("n > 0")
    }

    fn complex_input(n: usize, seed: usize) -> Matrix<Complex64> {
        let mut m = Matrix::from_fn(n, n, |r, c| {
            Complex64::new(((r * 3 + c + seed) % 7) as f64 * 0.2, 0.0)
        })
        .unwrap();
        m[(0, 0)] += Complex64::from_real(5.0); // null-free spectrum
        m
    }

    #[test]
    fn compiled_fft_matches_host_fft() {
        let n = 6;
        let x = complex_input(n, 1);
        let program = compile_fft2d(Fft2dSlots::default());
        let mut core = TpuCore::new(TpuConfig::small_test());
        let got = core
            .execute(
                &program,
                &[
                    (0, x.clone()),
                    (1, dft_matrix(n, false)),
                    (2, dft_matrix(n, false)),
                ],
            )
            .unwrap();
        // Reference: definition-based 2-D DFT.
        let expect = Matrix::from_fn(n, n, |k, l| {
            let mut acc = Complex64::ZERO;
            for r in 0..n {
                for c in 0..n {
                    acc += x[(r, c)]
                        * Complex64::twiddle((r * k) as i64, n)
                        * Complex64::twiddle((c * l) as i64, n);
                }
            }
            acc
        })
        .unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
    }

    #[test]
    fn compiled_distillation_recovers_kernel() {
        let n = 6;
        let x = complex_input(n, 2);
        // Build Y = F⁻¹(F(X)◦F(K)) for a known K, all on the host.
        let k_true = Matrix::from_fn(n, n, |r, c| {
            Complex64::from_real(((r * 2 + c) % 5) as f64 * 0.3)
        })
        .unwrap();
        let w = dft_matrix(n, false);
        let w_inv = dft_matrix(n, true);
        let f = |m: &Matrix<Complex64>| {
            xai_tensor::ops::matmul(&xai_tensor::ops::matmul(&w, m).unwrap(), &w).unwrap()
        };
        let f_inv = |m: &Matrix<Complex64>| {
            xai_tensor::ops::matmul(&xai_tensor::ops::matmul(&w_inv, m).unwrap(), &w_inv).unwrap()
        };
        let y = f_inv(&xai_tensor::ops::hadamard(&f(&x), &f(&k_true)).unwrap());

        let program = compile_distillation(DivPolicy::Clamp { floor: 1e-12 });
        let mut core = TpuCore::new(TpuConfig::small_test());
        let k_got = core
            .execute(
                &program,
                &[(0, x), (1, y), (2, w.clone()), (3, w_inv.clone())],
            )
            .unwrap();
        assert!(k_got.max_abs_diff(&k_true).unwrap() < 1e-8);
        // The whole solve charged the device — no host round trips.
        assert!(core.elapsed_cycles() > 0);
        assert!(core.trace().len() >= 7);
    }

    #[test]
    fn compiled_contribution_matches_equation5() {
        let n = 6;
        let x = complex_input(n, 3);
        let k = Matrix::from_fn(n, n, |r, c| {
            Complex64::from_real(((r + c * 3) % 4) as f64 * 0.25)
        })
        .unwrap();
        let w = dft_matrix(n, false);
        let w_inv = dft_matrix(n, true);
        let f = |m: &Matrix<Complex64>| {
            xai_tensor::ops::matmul(&xai_tensor::ops::matmul(&w, m).unwrap(), &w).unwrap()
        };
        let f_inv = |m: &Matrix<Complex64>| {
            xai_tensor::ops::matmul(&xai_tensor::ops::matmul(&w_inv, m).unwrap(), &w_inv).unwrap()
        };
        let y = f_inv(&xai_tensor::ops::hadamard(&f(&x), &f(&k)).unwrap());
        // Occlude element (1, 2).
        let mut x_occ = x.clone();
        x_occ[(1, 2)] = Complex64::ZERO;
        let expect = y
            .zip_with(
                &f_inv(&xai_tensor::ops::hadamard(&f(&x_occ), &f(&k)).unwrap()),
                |a, b| a - b,
            )
            .unwrap();

        let program = compile_contribution();
        let mut core = TpuCore::new(TpuConfig::small_test());
        let got = core
            .execute(
                &program,
                &[(0, x_occ), (1, f(&k)), (2, y), (3, w), (4, w_inv)],
            )
            .unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
    }

    #[test]
    fn compiled_contribution_batch_matches_per_lane_programs() {
        let n = 6;
        let lanes = 3;
        let k = Matrix::from_fn(n, n, |r, c| {
            Complex64::from_real(((r * 2 + c) % 5) as f64 * 0.3)
        })
        .unwrap();
        let w = dft_matrix(n, false);
        let w_inv = dft_matrix(n, true);
        let f = |m: &Matrix<Complex64>| {
            xai_tensor::ops::matmul(&xai_tensor::ops::matmul(&w, m).unwrap(), &w).unwrap()
        };
        let xs: Vec<Matrix<Complex64>> = (0..lanes).map(|i| complex_input(n, 4 + i)).collect();
        let y = complex_input(n, 9);

        let batch = compile_contribution_batch(lanes);
        assert_eq!(batch.instructions().len(), 6 * lanes);

        // The batch program's declared output is the LAST lane's diff;
        // it must match the single-lane program run on that input.
        let mut inputs = vec![
            (0, f(&k)),
            (1, y.clone()),
            (2, w.clone()),
            (3, w_inv.clone()),
        ];
        for (i, x) in xs.iter().enumerate() {
            inputs.push((4 + i, x.clone()));
        }
        let mut core = TpuCore::new(TpuConfig::small_test());
        let got = core.execute(&batch, &inputs).unwrap();

        let single = compile_contribution();
        let mut reference_core = TpuCore::new(TpuConfig::small_test());
        let expect = reference_core
            .execute(
                &single,
                &[
                    (0, xs[lanes - 1].clone()),
                    (1, f(&k)),
                    (2, y),
                    (3, w),
                    (4, w_inv),
                ],
            )
            .unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lanes > 0")]
    fn compiled_contribution_batch_rejects_empty_flight() {
        let _ = compile_contribution_batch(0);
    }

    #[test]
    fn compiled_programs_validate() {
        assert!(compile_fft2d(Fft2dSlots::default()).validate().is_ok());
        assert!(compile_distillation(DivPolicy::default())
            .validate()
            .is_ok());
        assert!(compile_contribution().validate().is_ok());
        assert!(compile_contribution_batch(1).validate().is_ok());
        assert!(compile_contribution_batch(5).validate().is_ok());
    }
}
