//! Property-based tests of the TPU simulator: the cycle-accurate
//! PE-grid dataflow must agree with reference arithmetic for *any*
//! operand values and shapes, and the cost model must obey basic
//! monotonicity laws.

use proptest::prelude::*;
use xai_tensor::Matrix;
use xai_tpu::{tile_stream_cycles, SystolicArray, TpuConfig, TpuDevice};

fn i8_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<i8>> {
    proptest::collection::vec(-60i8..60, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tile_simulation_equals_reference_for_any_values(
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let w = Matrix::from_fn(k, n, |r, c| {
            (((r as u64 * 31 + c as u64 * 17 + seed) % 121) as i8) - 60
        }).expect("dims");
        let a = Matrix::from_fn(m, k, |r, c| {
            (((r as u64 * 13 + c as u64 * 7 + seed * 3) % 121) as i8) - 60
        }).expect("dims");
        let array = SystolicArray::new(8, 8);
        let tile = array.simulate_tile(&w, &a).unwrap();
        let expect = xai_tensor::ops::matmul(&a.map(|v| v as i32), &w.map(|v| v as i32)).unwrap();
        prop_assert_eq!(tile.output, expect);
        prop_assert_eq!(tile.cycles, tile_stream_cycles(m, k, n));
    }

    #[test]
    fn multi_tile_equals_reference(a in i8_matrix(5, 7), w in i8_matrix(7, 6)) {
        let array = SystolicArray::new(3, 3); // force tiling
        let res = array.simulate_matmul(&a, &w).unwrap();
        let expect = xai_tensor::ops::matmul(&a.map(|v| v as i32), &w.map(|v| v as i32)).unwrap();
        prop_assert_eq!(res.output, expect);
    }

    #[test]
    fn matmul_cycles_monotone_in_every_dimension(
        m in 1usize..64,
        k in 1usize..64,
        n in 1usize..64,
    ) {
        let array = SystolicArray::new(8, 8);
        let base = array.matmul_cycles(m, k, n, true);
        prop_assert!(array.matmul_cycles(m + 8, k, n, true) >= base);
        prop_assert!(array.matmul_cycles(m, k + 8, n, true) >= base);
        prop_assert!(array.matmul_cycles(m, k, n + 8, true) >= base);
    }

    #[test]
    fn double_buffering_never_hurts(m in 1usize..32, k in 1usize..32, n in 1usize..32) {
        let array = SystolicArray::new(4, 4);
        prop_assert!(
            array.matmul_cycles(m, k, n, true) <= array.matmul_cycles(m, k, n, false)
        );
    }

    #[test]
    fn core_clock_only_moves_forward(ops in proptest::collection::vec(2usize..10, 1..6)) {
        let mut core = xai_tpu::TpuCore::new(TpuConfig::small_test());
        let mut last = 0;
        for n in ops {
            let m = Matrix::filled(n, n, 0.5).unwrap();
            core.matmul(&m, &m).unwrap();
            prop_assert!(core.elapsed_cycles() > last);
            last = core.elapsed_cycles();
        }
    }

    #[test]
    fn phase_wall_time_bounded_by_serial_sum(n_items in 1usize..8) {
        let mut dev = TpuDevice::with_cores(TpuConfig::small_test(), 4);
        let work: Vec<Matrix<f64>> = (0..n_items)
            .map(|i| Matrix::filled(4, 4, 0.1 * (i + 1) as f64).unwrap())
            .collect();
        dev.run_phase(work, |core, w| core.matmul(&w, &w)).unwrap();
        let serial_sum: f64 = dev.cores().iter().map(|c| c.elapsed_seconds()).sum();
        prop_assert!(dev.wall_seconds() <= serial_sum + 1e-12);
        prop_assert!(dev.wall_seconds() > 0.0);
    }
}
