//! Synthetic MIRAI-like malware register traces.
//!
//! The paper's second benchmark feeds a trace table to a ResNet50
//! detector: "each row represents the hex values in a register in
//! specific clock cycles (each column represents a specific clock
//! cycle)" (Figure 6). The key qualitative claim is that the
//! explanation's per-cycle contribution factors single out the cycle
//! where the bot assigns its `ATTACK_VECTOR` mode flag.
//!
//! Real MIRAI traces come from a hardware-assisted tracing setup we
//! don't have; this generator synthesises traces with the same
//! structure **and a known ground-truth attack cycle**, making the
//! paper's claim testable instead of anecdotal.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xai_tensor::{Matrix, Result, TensorError};

/// Trace label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceLabel {
    /// Normal firmware activity.
    Benign,
    /// Bot activity containing an attack-mode flag assignment.
    Malicious,
}

impl TraceLabel {
    /// Class index used by the classifier (benign = 0).
    pub fn class_index(self) -> usize {
        match self {
            TraceLabel::Benign => 0,
            TraceLabel::Malicious => 1,
        }
    }
}

/// Configuration of the trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of traced registers (rows).
    pub registers: usize,
    /// Number of recorded clock cycles (columns).
    pub cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            registers: 8,
            cycles: 8,
            seed: 0,
        }
    }
}

/// One synthesised register trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterTrace {
    /// Raw 8-bit register values, `registers × cycles`.
    pub raw: Matrix<i16>,
    /// The same table normalised to `[0, 1]` for the classifier.
    pub table: Matrix<f64>,
    /// Benign or malicious.
    pub label: TraceLabel,
    /// For malicious traces, the clock cycle (column) holding the
    /// `ATTACK_VECTOR` assignment signature.
    pub attack_cycle: Option<usize>,
}

impl RegisterTrace {
    /// Renders one row range of the trace as a hex table like the
    /// paper's Figure 6 snapshot.
    pub fn to_hex_table(&self) -> String {
        let mut s = String::new();
        s.push_str("        ");
        for c in 0..self.raw.cols() {
            s.push_str(&format!("  C{c:<4}"));
        }
        s.push('\n');
        for r in 0..self.raw.rows() {
            s.push_str(&format!("  R{r:<4}:"));
            for c in 0..self.raw.cols() {
                s.push_str(&format!("  0x{:02X} ", self.raw[(r, c)] as u8));
            }
            s.push('\n');
        }
        s
    }
}

/// The register row that carries the attack-mode flag (the MIRAI
/// `ATTACK_VECTOR` variable's home register in the synthetic ISA).
pub const ATTACK_REGISTER: usize = 2;

/// The signature value written when the bot selects an attack mode —
/// a fixed opcode-like constant that never occurs in benign traffic
/// (benign register values stay below 0x80).
pub const ATTACK_SIGNATURE: i16 = 0xF4;

/// Synthetic malware-trace dataset generator.
#[derive(Debug, Clone)]
pub struct TraceDataset {
    config: TraceConfig,
}

impl TraceDataset {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for zero dimensions and
    /// [`TensorError::ShapeMismatch`] when there are fewer registers
    /// than [`ATTACK_REGISTER`] requires.
    pub fn new(config: TraceConfig) -> Result<Self> {
        if config.registers == 0 || config.cycles == 0 {
            return Err(TensorError::EmptyDimension);
        }
        if config.registers <= ATTACK_REGISTER {
            return Err(TensorError::ShapeMismatch {
                left: (config.registers, 1),
                right: (ATTACK_REGISTER + 1, 1),
                op: "trace needs the attack register row",
            });
        }
        Ok(TraceDataset { config })
    }

    /// The generator's configuration.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Generates `n` traces, alternating benign/malicious.
    ///
    /// # Errors
    ///
    /// Propagates matrix construction errors (cannot occur for a
    /// validated config).
    pub fn generate(&self, n: usize) -> Result<Vec<RegisterTrace>> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let malicious = i % 2 == 1;
            out.push(self.generate_one(&mut rng, malicious)?);
        }
        Ok(out)
    }

    fn generate_one(&self, rng: &mut StdRng, malicious: bool) -> Result<RegisterTrace> {
        let (regs, cycles) = (self.config.registers, self.config.cycles);
        // Benign background: low-entropy counter/loop activity.
        let mut raw = Matrix::<i16>::zeros(regs, cycles)?;
        for r in 0..regs {
            let base = rng.random_range(0..64i16);
            for c in 0..cycles {
                // register drifts slowly; occasional reload
                let drift = ((c as i16) * ((r as i16 % 3) + 1)) % 32;
                let jitter = rng.random_range(0..8i16);
                raw[(r, c)] = (base + drift + jitter) % 128;
            }
        }
        let attack_cycle = if malicious {
            // The bot writes the mode flag somewhere mid-trace.
            let cycle = rng.random_range(1..cycles.max(2) - 1);
            raw[(ATTACK_REGISTER, cycle)] = ATTACK_SIGNATURE;
            // The flag is consumed immediately after: a couple of
            // dependent registers tick up on the dispatch cycle — a
            // weaker secondary trace of the same event.
            if cycle + 1 < cycles {
                for r in 0..regs {
                    if r != ATTACK_REGISTER && r % 4 == 0 {
                        raw[(r, cycle + 1)] = (raw[(r, cycle + 1)] + 48) % 256;
                    }
                }
            }
            Some(cycle)
        } else {
            None
        };
        let table = raw.map(|v| v as f64 / 255.0);
        Ok(RegisterTrace {
            raw,
            table,
            label: if malicious {
                TraceLabel::Malicious
            } else {
                TraceLabel::Benign
            },
            attack_cycle,
        })
    }

    /// Generates a `(train, test)` split with disjoint RNG streams.
    ///
    /// # Errors
    ///
    /// Propagates generation errors.
    pub fn generate_split(
        &self,
        train: usize,
        test: usize,
    ) -> Result<(Vec<RegisterTrace>, Vec<RegisterTrace>)> {
        let train_set = self.generate(train)?;
        let mut cfg = self.config;
        cfg.seed = self.config.seed.wrapping_add(0xDEAD_BEEF_CAFE_F00D);
        let test_set = TraceDataset::new(cfg)?.generate(test)?;
        Ok((train_set, test_set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> TraceDataset {
        TraceDataset::new(TraceConfig::default()).unwrap()
    }

    #[test]
    fn validation() {
        assert!(TraceDataset::new(TraceConfig {
            registers: 0,
            ..TraceConfig::default()
        })
        .is_err());
        assert!(TraceDataset::new(TraceConfig {
            registers: 2, // attack register is row 2 — needs ≥ 3
            ..TraceConfig::default()
        })
        .is_err());
    }

    #[test]
    fn labels_alternate() {
        let traces = dataset().generate(4).unwrap();
        assert_eq!(traces[0].label, TraceLabel::Benign);
        assert_eq!(traces[1].label, TraceLabel::Malicious);
        assert_eq!(traces[0].label.class_index(), 0);
        assert_eq!(traces[1].label.class_index(), 1);
    }

    #[test]
    fn malicious_traces_carry_signature_at_ground_truth_cycle() {
        for t in dataset().generate(10).unwrap() {
            match t.label {
                TraceLabel::Malicious => {
                    let cycle = t.attack_cycle.expect("malicious trace has cycle");
                    assert_eq!(t.raw[(ATTACK_REGISTER, cycle)], ATTACK_SIGNATURE);
                }
                TraceLabel::Benign => {
                    assert!(t.attack_cycle.is_none());
                    // Signature never appears in benign traces.
                    for &v in t.raw.as_slice() {
                        assert_ne!(v, ATTACK_SIGNATURE);
                    }
                }
            }
        }
    }

    #[test]
    fn normalised_table_in_unit_range() {
        for t in dataset().generate(6).unwrap() {
            for &v in t.table.as_slice() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn hex_rendering_mentions_rows_and_cycles() {
        let t = &dataset().generate(2).unwrap()[1];
        let s = t.to_hex_table();
        assert!(s.contains("C0"));
        assert!(s.contains("R2"));
        assert!(s.contains("0xF4"));
    }

    #[test]
    fn deterministic_and_split_streams_differ() {
        let a = dataset().generate(4).unwrap();
        let b = dataset().generate(4).unwrap();
        assert_eq!(a, b);
        let (train, test) = dataset().generate_split(2, 2).unwrap();
        assert_ne!(train[0].raw, test[0].raw);
    }
}
