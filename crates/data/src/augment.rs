//! Image augmentation for the training loop.
//!
//! Small, label-preserving transforms — horizontal flips and integer
//! shifts — the standard recipe for CIFAR-class training. Ground-truth
//! salient blocks are remapped alongside the pixels so the
//! explanation scoring stays valid on augmented data.

use crate::cifar::LabelledImage;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xai_nn::Tensor3;
use xai_tensor::Result;

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_probability: f64,
    /// Maximum absolute shift in pixels (each axis, uniform).
    pub max_shift: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            flip_probability: 0.5,
            max_shift: 1,
            seed: 0,
        }
    }
}

/// Horizontally mirrors a volume.
pub fn flip_horizontal(t: &Tensor3) -> Tensor3 {
    let (c, h, w) = t.shape();
    Tensor3::from_fn(c, h, w, |ch, y, x| t.get(ch, y, w - 1 - x))
        .expect("shape preserved, dims non-zero")
}

/// Shifts a volume by `(dy, dx)` pixels, zero-filling the exposed
/// border.
pub fn shift(t: &Tensor3, dy: isize, dx: isize) -> Tensor3 {
    let (c, h, w) = t.shape();
    Tensor3::from_fn(c, h, w, |ch, y, x| {
        let sy = y as isize - dy;
        let sx = x as isize - dx;
        if sy >= 0 && sx >= 0 && (sy as usize) < h && (sx as usize) < w {
            t.get(ch, sy as usize, sx as usize)
        } else {
            0.0
        }
    })
    .expect("shape preserved, dims non-zero")
}

/// Augments a labelled image set, producing `copies` randomised
/// variants per original (the originals are kept too). The
/// `salient_block` of flipped variants is mirrored in the block grid;
/// shifted variants keep their block (shifts are sub-block-sized by
/// construction when `max_shift < block edge`).
///
/// # Errors
///
/// Propagates tensor construction errors (cannot occur for valid
/// inputs).
pub fn augment(
    images: &[LabelledImage],
    grid: usize,
    config: AugmentConfig,
    copies: usize,
) -> Result<Vec<LabelledImage>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(images.len() * (1 + copies));
    out.extend_from_slice(images);
    for li in images {
        for _ in 0..copies {
            let mut image = li.image.clone();
            let mut block = li.salient_block;
            if rng.random::<f64>() < config.flip_probability {
                image = flip_horizontal(&image);
                block = (block.0, grid - 1 - block.1);
            }
            if config.max_shift > 0 {
                let s = config.max_shift as i64;
                let dy = rng.random_range(-s..=s) as isize;
                let dx = rng.random_range(-s..=s) as isize;
                image = shift(&image, dy, dx);
            }
            out.push(LabelledImage {
                image,
                label: li.label,
                salient_block: block,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cifar::{ImageConfig, ImageDataset};

    #[test]
    fn flip_is_involution() {
        let t = Tensor3::from_fn(2, 3, 4, |c, y, x| (c * 12 + y * 4 + x) as f64).unwrap();
        assert_eq!(flip_horizontal(&flip_horizontal(&t)), t);
        assert_eq!(flip_horizontal(&t).get(0, 0, 0), t.get(0, 0, 3));
    }

    #[test]
    fn shift_moves_and_zero_fills() {
        let t = Tensor3::from_fn(1, 3, 3, |_, y, x| (y * 3 + x + 1) as f64).unwrap();
        let s = shift(&t, 1, 0);
        assert_eq!(s.get(0, 0, 0), 0.0); // exposed border
        assert_eq!(s.get(0, 1, 0), t.get(0, 0, 0));
        let back = shift(&shift(&t, 0, 1), 0, -1);
        // Round trip loses only the border column.
        assert_eq!(back.get(0, 1, 1), t.get(0, 1, 1));
    }

    #[test]
    fn augmentation_grows_set_and_preserves_labels() {
        let ds = ImageDataset::new(ImageConfig::default()).unwrap();
        let images = ds.generate(4).unwrap();
        let augmented = augment(&images, 3, AugmentConfig::default(), 2).unwrap();
        assert_eq!(augmented.len(), 12);
        for (i, a) in augmented.iter().enumerate() {
            assert_eq!(a.label, images[if i < 4 { i } else { (i - 4) / 2 }].label);
        }
    }

    #[test]
    fn flipped_salient_block_is_mirrored() {
        let ds = ImageDataset::new(ImageConfig::default()).unwrap();
        let images = ds.generate(1).unwrap();
        let config = AugmentConfig {
            flip_probability: 1.0, // always flip
            max_shift: 0,
            seed: 0,
        };
        let augmented = augment(&images, 3, config, 1).unwrap();
        let (by, bx) = images[0].salient_block;
        assert_eq!(augmented[1].salient_block, (by, 2 - bx));
        // The flipped block really is the brightest one.
        let block = augmented[1].image.width() / 3;
        let (fy, fx) = augmented[1].salient_block;
        let mut best = (0, 0);
        let mut best_sum = f64::NEG_INFINITY;
        for gy in 0..3 {
            for gx in 0..3 {
                let mut sum = 0.0;
                for c in 0..augmented[1].image.channels() {
                    for dy in 0..block {
                        for dx in 0..block {
                            sum += augmented[1].image.get(c, gy * block + dy, gx * block + dx);
                        }
                    }
                }
                if sum > best_sum {
                    best_sum = sum;
                    best = (gy, gx);
                }
            }
        }
        assert_eq!(best, (fy, fx));
    }

    #[test]
    fn augmentation_is_deterministic() {
        let ds = ImageDataset::new(ImageConfig::default()).unwrap();
        let images = ds.generate(2).unwrap();
        let a = augment(&images, 3, AugmentConfig::default(), 3).unwrap();
        let b = augment(&images, 3, AugmentConfig::default(), 3).unwrap();
        assert_eq!(a, b);
    }
}
