//! Synthetic CIFAR-like image dataset with *ground-truth saliency*.
//!
//! The paper's Figure 5 explains a CIFAR-100 "cat" image and argues
//! the highlighted blocks (face, ear) are the right ones — by eye.
//! A synthetic dataset lets us do better: each class is defined by a
//! bright class-specific pattern placed in a known block of the
//! image, so an explanation method can be *scored* on whether it
//! attributes the prediction to that block.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xai_nn::Tensor3;
use xai_tensor::{Result, TensorError};

/// Configuration of the synthetic image generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageConfig {
    /// Number of classes (each gets a distinct salient block).
    pub classes: usize,
    /// Square image edge, pixels.
    pub size: usize,
    /// Colour channels.
    pub channels: usize,
    /// Edge of the block grid (e.g. 3 ⇒ 3×3 blocks as in Figure 5).
    pub grid: usize,
    /// Standard deviation of additive background noise.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImageConfig {
    fn default() -> Self {
        ImageConfig {
            classes: 4,
            size: 12,
            channels: 3,
            grid: 3,
            noise: 0.1,
            seed: 0,
        }
    }
}

/// One generated image with its label and ground-truth salient block.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledImage {
    /// The image volume (`channels × size × size`), values in ~[0, 1].
    pub image: Tensor3,
    /// Class label in `0..classes`.
    pub label: usize,
    /// `(block_row, block_col)` of the class-defining pattern in the
    /// `grid × grid` block decomposition — the explanation target.
    pub salient_block: (usize, usize),
}

/// Synthetic image dataset generator.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    config: ImageConfig,
}

impl ImageDataset {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] for zero classes,
    /// size, channels or grid; [`TensorError::ShapeMismatch`] when
    /// `grid` does not divide `size` or there are more classes than
    /// grid cells.
    pub fn new(config: ImageConfig) -> Result<Self> {
        if config.classes == 0 || config.size == 0 || config.channels == 0 || config.grid == 0 {
            return Err(TensorError::EmptyDimension);
        }
        if !config.size.is_multiple_of(config.grid) {
            return Err(TensorError::ShapeMismatch {
                left: (config.size, config.size),
                right: (config.grid, config.grid),
                op: "grid must divide image size",
            });
        }
        if config.classes > config.grid * config.grid {
            return Err(TensorError::ShapeMismatch {
                left: (config.classes, 1),
                right: (config.grid * config.grid, 1),
                op: "more classes than grid cells",
            });
        }
        Ok(ImageDataset { config })
    }

    /// The generator's configuration.
    pub fn config(&self) -> ImageConfig {
        self.config
    }

    /// The block assigned to a class.
    ///
    /// # Panics
    ///
    /// Panics if `label >= classes`.
    pub fn class_block(&self, label: usize) -> (usize, usize) {
        assert!(label < self.config.classes, "label out of range");
        // Spread classes over the grid deterministically, skipping in a
        // stride pattern so adjacent classes are not adjacent blocks.
        let cells = self.config.grid * self.config.grid;
        let idx = (label * 7 + 1) % cells;
        (idx / self.config.grid, idx % self.config.grid)
    }

    /// Generates `n` labelled images, classes round-robin.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors (cannot occur for a
    /// validated config).
    pub fn generate(&self, n: usize) -> Result<Vec<LabelledImage>> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let block = self.config.size / self.config.grid;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % self.config.classes;
            let (by, bx) = self.class_block(label);
            let (y0, x0) = (by * block, bx * block);
            let noise = self.config.noise;
            let mut image = Tensor3::from_fn(
                self.config.channels,
                self.config.size,
                self.config.size,
                |_, _, _| 0.2 + noise * (rng.random::<f64>() - 0.5),
            )?;
            // Class-defining bright pattern: a filled block with a
            // channel-dependent chequer so channels differ.
            for c in 0..self.config.channels {
                for dy in 0..block {
                    for dx in 0..block {
                        let chequer = if (dy + dx + c) % 2 == 0 { 0.9 } else { 0.7 };
                        image.set(
                            c,
                            y0 + dy,
                            x0 + dx,
                            chequer + noise * (rng.random::<f64>() - 0.5),
                        );
                    }
                }
            }
            out.push(LabelledImage {
                image,
                label,
                salient_block: (by, bx),
            });
        }
        Ok(out)
    }

    /// Generates a `(train, test)` split with disjoint RNG streams.
    ///
    /// # Errors
    ///
    /// Propagates generation errors.
    pub fn generate_split(
        &self,
        train: usize,
        test: usize,
    ) -> Result<(Vec<LabelledImage>, Vec<LabelledImage>)> {
        let train_set = self.generate(train)?;
        let mut test_cfg = self.config;
        test_cfg.seed = self.config.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let test_set = ImageDataset::new(test_cfg)?.generate(test)?;
        Ok((train_set, test_set))
    }
}

/// Converts labelled images into the `(Tensor3, usize)` pairs the
/// trainer consumes.
pub fn as_training_pairs(images: &[LabelledImage]) -> Vec<(Tensor3, usize)> {
    images
        .iter()
        .map(|li| (li.image.clone(), li.label))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> ImageDataset {
        ImageDataset::new(ImageConfig::default()).unwrap()
    }

    #[test]
    fn validation_rejects_bad_configs() {
        // grid 3 does not divide 10
        let c = ImageConfig {
            size: 10,
            ..ImageConfig::default()
        };
        assert!(ImageDataset::new(c).is_err());
        // more classes than the 9 grid cells
        let c = ImageConfig {
            classes: 100,
            ..ImageConfig::default()
        };
        assert!(ImageDataset::new(c).is_err());
        let c = ImageConfig {
            channels: 0,
            ..ImageConfig::default()
        };
        assert!(ImageDataset::new(c).is_err());
    }

    #[test]
    fn labels_round_robin_and_blocks_distinct() {
        let ds = dataset();
        let images = ds.generate(8).unwrap();
        assert_eq!(images[0].label, 0);
        assert_eq!(images[5].label, 1);
        // all 4 classes get distinct blocks
        let blocks: std::collections::HashSet<_> = (0..4).map(|l| ds.class_block(l)).collect();
        assert_eq!(blocks.len(), 4);
    }

    #[test]
    fn salient_block_is_brightest() {
        let ds = dataset();
        for li in ds.generate(8).unwrap() {
            let block = ds.config().size / ds.config().grid;
            let mut best = (0usize, 0usize);
            let mut best_mean = f64::NEG_INFINITY;
            for by in 0..ds.config().grid {
                for bx in 0..ds.config().grid {
                    let mut sum = 0.0;
                    for c in 0..ds.config().channels {
                        for dy in 0..block {
                            for dx in 0..block {
                                sum += li.image.get(c, by * block + dy, bx * block + dx);
                            }
                        }
                    }
                    if sum > best_mean {
                        best_mean = sum;
                        best = (by, bx);
                    }
                }
            }
            assert_eq!(best, li.salient_block, "label {}", li.label);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset().generate(4).unwrap();
        let b = dataset().generate(4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_uses_disjoint_streams() {
        let (train, test) = dataset().generate_split(4, 4).unwrap();
        assert_eq!(train.len(), 4);
        assert_eq!(test.len(), 4);
        // Same labels, different noise realisations.
        assert_eq!(train[0].label, test[0].label);
        assert_ne!(train[0].image, test[0].image);
    }

    #[test]
    fn training_pairs_preserve_labels() {
        let images = dataset().generate(6).unwrap();
        let pairs = as_training_pairs(&images);
        assert_eq!(pairs.len(), 6);
        for (p, li) in pairs.iter().zip(&images) {
            assert_eq!(p.1, li.label);
            assert_eq!(p.0, li.image);
        }
    }

    #[test]
    fn values_are_in_sane_range() {
        for li in dataset().generate(4).unwrap() {
            for &v in li.image.as_slice() {
                assert!((-0.5..=1.5).contains(&v), "value {v}");
            }
        }
    }
}
