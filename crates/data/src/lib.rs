//! # xai-data
//!
//! Synthetic datasets standing in for the paper's two benchmarks
//! (see DESIGN.md's substitution log):
//!
//! * [`cifar`] — CIFAR-like images whose classes are defined by a
//!   bright pattern in a *known* block, so Figure-5-style block
//!   saliency can be scored against ground truth;
//! * [`mirai`] — MIRAI-like register×clock-cycle trace tables with an
//!   implanted `ATTACK_VECTOR` assignment at a *known* cycle, so
//!   Figure-6-style cycle attribution can be scored against ground
//!   truth.
//!
//! ```
//! use xai_data::cifar::{ImageConfig, ImageDataset};
//!
//! # fn main() -> Result<(), xai_tensor::TensorError> {
//! let ds = ImageDataset::new(ImageConfig::default())?;
//! let images = ds.generate(8)?;
//! assert_eq!(images.len(), 8);
//! // Every image knows which block explains its class.
//! let (by, bx) = images[0].salient_block;
//! assert!(by < 3 && bx < 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod augment;
pub mod cifar;
pub mod io;
pub mod mirai;

pub use augment::{augment, flip_horizontal, shift, AugmentConfig};
pub use cifar::{as_training_pairs, ImageConfig, ImageDataset, LabelledImage};
pub use io::{parse_cifar, parse_trace_table, CifarFormat, CifarRecord};
pub use mirai::{
    RegisterTrace, TraceConfig, TraceDataset, TraceLabel, ATTACK_REGISTER, ATTACK_SIGNATURE,
};
