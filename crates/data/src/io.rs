//! Loaders for the real datasets' on-disk formats.
//!
//! The paper evaluates on CIFAR-100 and MIRAI register traces. The
//! synthetic generators in [`crate::cifar`]/[`crate::mirai`] stand in
//! for them offline (DESIGN.md substitution log); when a user *does*
//! have the real files, these parsers load them into the same types:
//!
//! * [`parse_cifar`] reads the CIFAR binary format (one or two label
//!   bytes followed by 3×32×32 pixel bytes per record — CIFAR-10 and
//!   CIFAR-100 respectively);
//! * [`parse_trace_table`] reads a whitespace-separated hex trace
//!   table like the paper's Figure 6 snapshot.
//!
//! Both parse from any `Read`, so tests exercise them on in-memory
//! buffers.

use crate::mirai::{RegisterTrace, TraceLabel, ATTACK_REGISTER, ATTACK_SIGNATURE};
use std::io::Read;
use xai_nn::Tensor3;
use xai_tensor::{Matrix, Result, TensorError};

/// CIFAR image edge (fixed by the format).
pub const CIFAR_SIZE: usize = 32;
/// CIFAR channel count (fixed by the format).
pub const CIFAR_CHANNELS: usize = 3;
const CIFAR_PIXELS: usize = CIFAR_CHANNELS * CIFAR_SIZE * CIFAR_SIZE;

/// CIFAR binary-format flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CifarFormat {
    /// One label byte per record (CIFAR-10).
    Cifar10,
    /// Coarse + fine label bytes per record (CIFAR-100, the paper's
    /// benchmark); the fine label is kept.
    Cifar100,
}

impl CifarFormat {
    fn label_bytes(self) -> usize {
        match self {
            CifarFormat::Cifar10 => 1,
            CifarFormat::Cifar100 => 2,
        }
    }
}

/// One decoded CIFAR record.
#[derive(Debug, Clone, PartialEq)]
pub struct CifarRecord {
    /// The image as a `3 × 32 × 32` volume, pixels scaled to [0, 1].
    pub image: Tensor3,
    /// The (fine) class label.
    pub label: usize,
}

/// Parses CIFAR binary records from a reader. A mut reference can be
/// passed for readers that should remain usable afterwards.
///
/// # Errors
///
/// Returns [`TensorError::DataLength`] when the stream ends inside a
/// record (trailing garbage or truncation).
pub fn parse_cifar<R: Read>(mut reader: R, format: CifarFormat) -> Result<Vec<CifarRecord>> {
    let record_len = format.label_bytes() + CIFAR_PIXELS;
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|_| TensorError::EmptyDimension)?;
    if bytes.len() % record_len != 0 {
        return Err(TensorError::DataLength {
            expected: (bytes.len() / record_len + 1) * record_len,
            actual: bytes.len(),
        });
    }
    let mut records = Vec::with_capacity(bytes.len() / record_len);
    for chunk in bytes.chunks_exact(record_len) {
        // CIFAR-100 stores [coarse, fine]; keep the fine label.
        let label = chunk[format.label_bytes() - 1] as usize;
        let pixels = &chunk[format.label_bytes()..];
        let image = Tensor3::from_fn(CIFAR_CHANNELS, CIFAR_SIZE, CIFAR_SIZE, |c, y, x| {
            pixels[(c * CIFAR_SIZE + y) * CIFAR_SIZE + x] as f64 / 255.0
        })?;
        records.push(CifarRecord { image, label });
    }
    Ok(records)
}

/// Parses a whitespace-separated hex trace table (rows = registers,
/// columns = clock cycles) into a [`RegisterTrace`]. Values may carry
/// an optional `0x` prefix. The label is inferred: a trace containing
/// the [`ATTACK_SIGNATURE`] in the attack register row is malicious,
/// with that column as the attack cycle.
///
/// # Errors
///
/// Returns [`TensorError::EmptyDimension`] for an empty table,
/// [`TensorError::DataLength`] for ragged rows, and
/// [`TensorError::DivisionByZero`] never — malformed hex yields
/// [`TensorError::DataLength`] with the offending flat index encoded
/// as `actual`.
pub fn parse_trace_table<R: Read>(mut reader: R) -> Result<RegisterTrace> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|_| TensorError::EmptyDimension)?;
    let mut rows: Vec<Vec<i16>> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for (i, token) in line.split_whitespace().enumerate() {
            let hex = token.strip_prefix("0x").unwrap_or(token);
            let value = i16::from_str_radix(hex, 16).map_err(|_| TensorError::DataLength {
                expected: rows.len(),
                actual: i,
            })?;
            row.push(value);
        }
        rows.push(row);
    }
    let first = rows.first().ok_or(TensorError::EmptyDimension)?;
    let cols = first.len();
    if cols == 0 || rows.iter().any(|r| r.len() != cols) {
        return Err(TensorError::DataLength {
            expected: cols,
            actual: rows.iter().map(Vec::len).min().unwrap_or(0),
        });
    }
    let raw = Matrix::from_fn(rows.len(), cols, |r, c| rows[r][c])?;
    let attack_cycle = (0..cols)
        .find(|&c| ATTACK_REGISTER < raw.rows() && raw[(ATTACK_REGISTER, c)] == ATTACK_SIGNATURE);
    let table = raw.map(|v| v as f64 / 255.0);
    Ok(RegisterTrace {
        raw,
        table,
        label: if attack_cycle.is_some() {
            TraceLabel::Malicious
        } else {
            TraceLabel::Benign
        },
        attack_cycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic CIFAR byte stream with known labels/pixels.
    fn cifar_bytes(format: CifarFormat, n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            if format == CifarFormat::Cifar100 {
                out.push((i % 20) as u8); // coarse
            }
            out.push((i % 100) as u8); // (fine) label
            for p in 0..CIFAR_PIXELS {
                out.push(((p + i) % 256) as u8);
            }
        }
        out
    }

    #[test]
    fn parses_cifar10_records() {
        let bytes = cifar_bytes(CifarFormat::Cifar10, 3);
        let records = parse_cifar(&bytes[..], CifarFormat::Cifar10).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1].label, 1);
        assert_eq!(records[0].image.shape(), (3, 32, 32));
        // pixel 0 of record 0 is byte 0 → 0.0
        assert_eq!(records[0].image.get(0, 0, 0), 0.0);
        // record 1's pixels start at value 1
        assert!((records[1].image.get(0, 0, 0) - 1.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn parses_cifar100_fine_labels() {
        let bytes = cifar_bytes(CifarFormat::Cifar100, 2);
        let records = parse_cifar(&bytes[..], CifarFormat::Cifar100).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].label, 0);
        assert_eq!(records[1].label, 1);
    }

    #[test]
    fn truncated_cifar_stream_rejected() {
        let mut bytes = cifar_bytes(CifarFormat::Cifar10, 1);
        bytes.pop();
        assert!(parse_cifar(&bytes[..], CifarFormat::Cifar10).is_err());
    }

    #[test]
    fn channel_layout_is_planar() {
        // CIFAR stores R-plane, G-plane, B-plane.
        let mut bytes = vec![7u8]; // label
        bytes.extend(std::iter::repeat_n(10u8, 1024)); // R
        bytes.extend(std::iter::repeat_n(20u8, 1024)); // G
        bytes.extend(std::iter::repeat_n(30u8, 1024)); // B
        let records = parse_cifar(&bytes[..], CifarFormat::Cifar10).unwrap();
        let img = &records[0].image;
        assert!((img.get(0, 5, 5) - 10.0 / 255.0).abs() < 1e-12);
        assert!((img.get(1, 5, 5) - 20.0 / 255.0).abs() < 1e-12);
        assert!((img.get(2, 5, 5) - 30.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn parses_benign_trace_table() {
        let text = "# header comment\n0x10 0x11 0x12\n0x20 0x21 0x22\n0x30 0x31 0x32\n";
        let trace = parse_trace_table(text.as_bytes()).unwrap();
        assert_eq!(trace.raw.shape(), (3, 3));
        assert_eq!(trace.raw[(1, 2)], 0x22);
        assert_eq!(trace.label, TraceLabel::Benign);
        assert!(trace.attack_cycle.is_none());
    }

    #[test]
    fn detects_attack_signature_in_trace() {
        // Attack register is row 2; signature 0xF4 in column 1.
        let text = "00 01 02\n10 11 12\n20 F4 22\n30 31 32\n";
        let trace = parse_trace_table(text.as_bytes()).unwrap();
        assert_eq!(trace.label, TraceLabel::Malicious);
        assert_eq!(trace.attack_cycle, Some(1));
    }

    #[test]
    fn trace_parse_errors() {
        assert!(parse_trace_table("".as_bytes()).is_err());
        assert!(parse_trace_table("00 01\n10\n".as_bytes()).is_err()); // ragged
        assert!(parse_trace_table("zz yy\n".as_bytes()).is_err()); // bad hex
    }

    #[test]
    fn parsed_trace_roundtrips_through_hex_rendering() {
        let text = "00 01\n10 11\n20 21\n";
        let trace = parse_trace_table(text.as_bytes()).unwrap();
        let rendered = trace.to_hex_table();
        assert!(rendered.contains("0x11"));
        assert!(rendered.contains("R2"));
    }
}
