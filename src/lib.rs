//! # tpu-xai
//!
//! A Rust reproduction of **"Hardware Acceleration of Explainable
//! Machine Learning using Tensor Processing Units"** (Zhixin Pan and
//! Prabhat Mishra, DATE 2022, arXiv:2103.11927).
//!
//! The paper turns model-distillation-based explanation into pure
//! matrix computation — `K = F⁻¹(F(Y)/F(X))` plus occlusion
//! differences — and maps it onto a TPU's systolic matrix engine via
//! the DFT-matrix factorisation `X = (W_M·x)·W_N`, sharded across
//! cores (Algorithm 1) and across inputs (§III-D).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`tensor`] | matrices, complex numbers, convolution, int8 quantisation |
//! | [`fourier`] | naive DFT, radix-2, Bluestein, DFT-matrix form, 2-D row–column |
//! | [`tpu`] | cycle-level systolic-array / multi-core TPU simulator |
//! | [`accel`] | `Accelerator` trait + CPU/GPU/TPU hardware cost models |
//! | [`nn`] | from-scratch CNN substrate (VGG-style, ResNet-style) |
//! | [`data`] | synthetic CIFAR-like images & MIRAI-like malware traces |
//! | [`core`] | the paper: distillation, contribution factors, explainers |
//! | [`serve`] | serving front door: admission control, deadlines, load shedding |
//! | [`parallel`] | hand-rolled work-stealing host runtime behind every parallel path |
//!
//! ## Quickstart
//!
//! ```
//! use tpu_xai::core::{DistilledModel, SolveStrategy};
//! use tpu_xai::tensor::{conv::conv2d_circular, Matrix};
//!
//! # fn main() -> Result<(), tpu_xai::tensor::TensorError> {
//! // A black-box that is secretly a convolution...
//! let k_true = Matrix::from_fn(8, 8, |r, c| ((r + c * 3) % 5) as f64 * 0.2)?;
//! let x = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c) % 7) as f64 - 3.0)?;
//! let y = conv2d_circular(&x, &k_true)?;
//!
//! // ...recovered in closed form: one Fourier round trip.
//! let model = DistilledModel::fit(&[(x, y)], SolveStrategy::default())?;
//! assert!(model.kernel().max_abs_diff(&k_true)? < 1e-6);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for the paper's two case studies
//! (image classification, malware detection) and the scalability
//! sweep, and `crates/bench` for the binaries regenerating every
//! table and figure of the paper's evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use xai_accel as accel;
pub use xai_core as core;
pub use xai_data as data;
pub use xai_fourier as fourier;
pub use xai_nn as nn;
pub use xai_parallel as parallel;
pub use xai_serve as serve;
pub use xai_tensor as tensor;
pub use xai_tpu as tpu;
