//! Host work-stealing runtime integration: the wired hot paths must
//! be bit-identical to serial execution under a real multi-worker
//! pool, and repeated parallel calls must reuse the pool's persistent
//! threads instead of growing the process.
//!
//! Every test funnels through [`setup`] before touching the global
//! pool, pinning it to 7 workers for this whole test process — an
//! intentionally awkward worker count (prime, larger than most row
//! splits here) so ragged chunk balancing actually happens.

use std::sync::Arc;
use std::time::Duration;
use tpu_xai::accel::{Accelerator, TpuAccel};
use tpu_xai::core::{explain_batch_on, explain_batch_parallel_on, DistilledModel, SolveStrategy};
use tpu_xai::fourier::Fft2d;
use tpu_xai::parallel;
use tpu_xai::tensor::ops::{self, DivPolicy};
use tpu_xai::tensor::{conv::conv2d_circular, Complex64, Matrix, TensorError};
use xai_sync::{LockClass, OrderedMutex, OrderedMutexGuard};

/// Pins the pool size for this process before anything can touch the
/// lazily-initialised global pool (`init_global` rather than setting
/// `XAI_THREADS`: mutating the environment of an already-threaded
/// test process races libc getenv).
fn setup() -> &'static parallel::Pool {
    parallel::init_global(7);
    let pool = parallel::global();
    assert_eq!(pool.num_threads(), 7, "explicit init must win");
    pool
}

/// Serialises the tests that fan out on the pool's *blocking* lane:
/// the harness runs tests concurrently, and two overlapping request
/// fleets would legitimately push the crew high-water mark past what
/// the thread-count test measured, flaking its assertion.
fn crew_lock() -> OrderedMutexGuard<'static, ()> {
    // Rank 1: this gate is held across whole request fleets, i.e.
    // while every other lock class in the stack gets acquired.
    static CREW_GATE: LockClass = LockClass::new("test::crew_gate", 1);
    static LOCK: OrderedMutex<()> = OrderedMutex::new(&CREW_GATE, ());
    LOCK.lock_recover()
}

#[test]
fn parallel_matmul_bit_identical_on_ragged_shapes() {
    setup();
    // Deliberately ragged: rows not divisible by any block size used.
    let a = Matrix::from_fn(123, 77, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0).unwrap();
    let b = Matrix::from_fn(77, 45, |r, c| ((r * 5 + c * 11) % 17) as f64 - 8.0).unwrap();
    for block in [1usize, 2, 5, 64, 200] {
        let serial = ops::matmul_blocked(&a, &b, block).unwrap();
        let par = ops::matmul_blocked_parallel(&a, &b, block).unwrap();
        assert_eq!(serial.as_slice(), par.as_slice(), "block={block}");
    }
}

#[test]
fn parallel_fft2d_bit_identical_across_worker_counts() {
    setup();
    // 50×36: both axes hit the Bluestein path, rows are ragged for
    // every worker count below.
    let plan = Fft2d::new(50, 36);
    let xs: Vec<Matrix<Complex64>> = (0..5)
        .map(|s| {
            Matrix::from_fn(50, 36, |r, c| {
                Complex64::new(
                    ((r * 7 + c * 3 + s) % 11) as f64 - 5.0,
                    ((r + c * 2 + s * 5) % 9) as f64 * 0.4,
                )
            })
            .unwrap()
        })
        .collect();
    let per: Vec<_> = xs.iter().map(|x| plan.forward(x).unwrap()).collect();
    for workers in [1usize, 2, 4, 7] {
        let single = plan.forward_parallel(&xs[0], workers).unwrap();
        assert_eq!(per[0].as_slice(), single.as_slice(), "workers={workers}");
        let batch = plan.forward_batch_parallel(&xs, workers).unwrap();
        for (p, b) in per.iter().zip(&batch) {
            assert_eq!(p.as_slice(), b.as_slice(), "workers={workers}");
        }
        let inv = plan.inverse_batch_parallel(&per, workers).unwrap();
        let per_inv: Vec<_> = per.iter().map(|x| plan.inverse(x).unwrap()).collect();
        for (p, i) in per_inv.iter().zip(&inv) {
            assert_eq!(p.as_slice(), i.as_slice(), "workers={workers}");
        }
    }
}

#[test]
fn parallel_elementwise_bit_identical_to_reference() {
    setup();
    // 300×120 = 36000 elements: above the parallel threshold, ragged
    // against the fixed 32768-element chunking.
    let a = Matrix::from_fn(300, 120, |r, c| {
        Complex64::new(((r * 3 + c) % 19) as f64 - 9.0, ((r + c * 7) % 13) as f64)
    })
    .unwrap();
    let b = Matrix::from_fn(300, 120, |r, c| {
        Complex64::new(((r + c * 5) % 17) as f64 - 3.0, ((r * 11 + c) % 7) as f64)
    })
    .unwrap();
    // zip_with is the untouched serial reference implementation.
    let had_ref = a.zip_with(&b, |x, y| x * y).unwrap();
    assert_eq!(
        ops::hadamard(&a, &b).unwrap().as_slice(),
        had_ref.as_slice()
    );
    let sub_ref = a.zip_with(&b, |x, y| x - y).unwrap();
    assert_eq!(ops::sub(&a, &b).unwrap().as_slice(), sub_ref.as_slice());
    let add_ref = a.zip_with(&b, |x, y| x + y).unwrap();
    assert_eq!(ops::add(&a, &b).unwrap().as_slice(), add_ref.as_slice());

    // Pointwise division under Clamp: reference via the same formula.
    let floor = 2.0;
    let div_ref = a
        .zip_with(&b, |x, y| {
            let mag = y.abs();
            if mag == 0.0 {
                x / Complex64::from_real(floor)
            } else if mag < floor {
                x / y.scale(floor / mag)
            } else {
                x / y
            }
        })
        .unwrap();
    let div = ops::pointwise_div(&a, &b, DivPolicy::Clamp { floor }).unwrap();
    assert_eq!(div.as_slice(), div_ref.as_slice());
}

#[test]
fn parallel_strict_division_reports_first_zero_index() {
    setup();
    // Two zeros, both beyond the first 32768-element chunk; Strict
    // mode must deterministically report the SMALLER index, exactly
    // like the serial scan.
    let a = Matrix::filled(300, 120, Complex64::ONE).unwrap();
    let mut b = Matrix::filled(300, 120, Complex64::ONE).unwrap();
    b[(290, 50)] = Complex64::ZERO; // index 34850
    b[(277, 10)] = Complex64::ZERO; // index 33250 — the first
    let err = ops::pointwise_div(&a, &b, DivPolicy::Strict { tol: 0.0 }).unwrap_err();
    assert_eq!(
        err,
        TensorError::DivisionByZero {
            index: 277 * 120 + 10
        }
    );
}

#[cfg(target_os = "linux")]
fn runtime_threads() -> usize {
    // Count only the runtime's own named threads, so concurrently
    // running test-harness threads can't skew the assertion.
    std::fs::read_dir("/proc/self/task")
        .expect("procfs")
        .filter(|entry| {
            let entry = match entry {
                Ok(e) => e,
                Err(_) => return false,
            };
            std::fs::read_to_string(entry.path().join("comm"))
                .map(|comm| comm.starts_with("xai-par"))
                .unwrap_or(false)
        })
        .count()
}

/// The satellite bugfix assertion: thread spawns used to be per-call
/// (`std::thread::scope` in `forward_batch_parallel` and
/// `explain_batch_parallel_on`); with the pool they are persistent,
/// so repeated calls must not grow the process thread count.
#[test]
#[cfg(target_os = "linux")]
fn repeated_parallel_calls_do_not_grow_thread_count() {
    setup();
    let _serial = crew_lock();
    let k = Matrix::from_fn(16, 16, |r, c| ((r + c * 3) % 5) as f64 * 0.25).unwrap();
    let pairs: Vec<_> = (0..6)
        .map(|s| {
            let x = Matrix::from_fn(16, 16, |r, c| ((r * 5 + c + s) % 9) as f64 - 4.0).unwrap();
            let y = conv2d_circular(&x, &k).unwrap();
            (x, y)
        })
        .collect();
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    let plan = Fft2d::new(32, 32);
    let xs: Vec<_> = (0..4)
        .map(|s| {
            Matrix::from_fn(32, 32, |r, c| {
                Complex64::new(((r + c + s) % 7) as f64, (r % 3) as f64)
            })
            .unwrap()
        })
        .collect();
    let acc: Arc<TpuAccel> =
        Arc::new(TpuAccel::with_cores(8).with_batching(Duration::from_millis(50), 6 * 16));

    let round = || {
        plan.forward_batch_parallel(&xs, 7).unwrap();
        explain_batch_parallel_on(&*acc, &model, &pairs, 4, 6).unwrap();
        ops::matmul_blocked_parallel(
            &Matrix::filled(96, 96, 0.5).unwrap(),
            &Matrix::filled(96, 96, 2.0).unwrap(),
            32,
        )
        .unwrap();
    };

    // Two warm-up rounds establish the pool + crew high-water mark
    // (two, so a scheduling hiccup in the very first fan-out on a
    // loaded runner can't understate the mark and flake the test).
    round();
    round();
    let high_water = runtime_threads();
    assert!(high_water >= 7, "compute pool is up (got {high_water})");
    for i in 0..4 {
        round();
        let now = runtime_threads();
        assert!(
            now <= high_water,
            "round {i}: runtime threads grew {high_water} -> {now}"
        );
    }
}

/// End-to-end: the serving path through the pool's blocking lane is
/// still bit-identical to serial and still coalesces flights.
#[test]
fn serving_path_identical_through_pool() {
    setup();
    let _serial = crew_lock();
    let k = Matrix::from_fn(8, 8, |r, c| ((r + c * 3) % 5) as f64 * 0.25).unwrap();
    let pairs: Vec<_> = (0..6)
        .map(|s| {
            let x = Matrix::from_fn(8, 8, |r, c| ((r * 5 + c + s) % 9) as f64 - 4.0).unwrap();
            let y = conv2d_circular(&x, &k).unwrap();
            (x, y)
        })
        .collect();
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    let serial = explain_batch_on(&TpuAccel::with_cores(4), &model, &pairs, 4).unwrap();
    let shared: Arc<dyn Accelerator> = Arc::new(TpuAccel::with_cores(4));
    for workers in [1usize, 2, 4, 7] {
        let par = explain_batch_parallel_on(&*shared, &model, &pairs, 4, workers).unwrap();
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.as_slice(), p.as_slice(), "workers={workers}");
        }
    }
}
