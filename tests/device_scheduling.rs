//! Integration tests of Algorithm 1 and the device-level scheduling:
//! the simulated TPU must produce host-identical numerics while its
//! clocks behave like hardware — on one chip, and sharded across a
//! multi-chip [`DevicePool`].

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tpu_xai::accel::{Accelerator, TpuAccel};
use tpu_xai::core::{
    explain_batch_on, explain_batch_parallel_on, fft2d_on_device, ifft2d_on_device, DistilledModel,
    SolveStrategy,
};
use tpu_xai::tensor::{conv::conv2d_circular, Complex64, Matrix, TensorError};
use tpu_xai::tpu::{
    BatchQueue, DevicePool, Instruction, LaneCost, Program, SharedDevice, SystolicArray, TpuConfig,
    TpuCore, TpuDevice,
};
use xai_tensor::ops::DivPolicy;

fn spectrum_input(m: usize, n: usize) -> Matrix<Complex64> {
    Matrix::from_fn(m, n, |r, c| {
        Complex64::new(
            ((r * 7 + c) % 9) as f64 - 4.0,
            ((r + c * 5) % 7) as f64 * 0.5,
        )
    })
    .unwrap()
}

#[test]
fn algorithm1_is_exact_for_every_core_count() {
    let x = spectrum_input(12, 12);
    let host = tpu_xai::fourier::fft2d(&x).unwrap();
    for cores in [1usize, 2, 3, 5, 12, 64] {
        let device = SharedDevice::with_cores(TpuConfig::small_test(), cores);
        let dev = fft2d_on_device(&device, &x).unwrap();
        assert!(host.max_abs_diff(&dev).unwrap() < 1e-9, "cores={cores}");
        let back = ifft2d_on_device(&device, &dev).unwrap();
        assert!(x.max_abs_diff(&back).unwrap() < 1e-9, "cores={cores}");
    }
}

#[test]
fn whole_distillation_runs_as_one_device_program() {
    // Compile K = F(Y) ⊘ F(X) in the frequency domain as an ISA
    // program (the "one forward pass" of the paper's §I).
    let program = Program::new(
        3,
        vec![Instruction::PointwiseDiv {
            a: 0,
            b: 1,
            dst: 2,
            policy: DivPolicy::Clamp { floor: 1e-12 },
        }],
        2,
    );
    let x = spectrum_input(8, 8);
    let k = spectrum_input(8, 8).map(|z| z * Complex64::new(0.3, 0.1));
    let fx = tpu_xai::fourier::fft2d(&x).unwrap();
    let fk = tpu_xai::fourier::fft2d(&k).unwrap();
    let fy = xai_tensor::ops::hadamard(&fx, &fk).unwrap();

    let mut core = TpuCore::new(TpuConfig::small_test());
    let recovered_spec = core.execute(&program, &[(0, fy), (1, fx)]).unwrap();
    let recovered = tpu_xai::fourier::ifft2d(&recovered_spec).unwrap();
    assert!(recovered.max_abs_diff(&k).unwrap() < 1e-8);
    assert!(core.elapsed_cycles() > 0);
    assert!(core.trace().len() >= 3); // 2 host transfers + 1 div
}

#[test]
fn systolic_array_agrees_with_quantized_matmul() {
    // The cycle-accurate PE grid and the batch int8 matmul must agree
    // bit for bit (both use i32 accumulation).
    let array = SystolicArray::new(8, 8);
    let w = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c) % 15) as i8 - 7).unwrap();
    let a = Matrix::from_fn(6, 8, |r, c| ((r * 5 + c * 2) % 13) as i8 - 6).unwrap();
    let tile = array.simulate_tile(&w, &a).unwrap();
    let expect = xai_tensor::ops::matmul(&a.map(|v| v as i32), &w.map(|v| v as i32)).unwrap();
    assert_eq!(tile.output, expect);
}

#[test]
fn communication_cost_scales_with_payload() {
    let mut device = TpuDevice::with_cores(TpuConfig::tpu_v2(), 4);
    let small: Vec<Matrix<f64>> = (0..4).map(|_| Matrix::filled(8, 8, 1.0).unwrap()).collect();
    device.cross_replica_sum(&small).unwrap();
    let t_small = device.comm_seconds();
    device.reset();
    let large: Vec<Matrix<f64>> = (0..4)
        .map(|_| Matrix::filled(64, 64, 1.0).unwrap())
        .collect();
    device.cross_replica_sum(&large).unwrap();
    assert!(device.comm_seconds() > t_small);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Sharding §III-D explanation batches across 1, 2, 4 or 16
    /// simulated chips must be bit-identical to the single-device
    /// path: lanes are pure functions of their inputs, wherever they
    /// are placed.
    #[test]
    fn pooled_explanations_bit_identical_across_device_counts(
        seed in proptest::collection::vec(-4.0f64..4.0, 8 * 8 * 4),
    ) {
        let k = Matrix::from_fn(8, 8, |r, c| ((r + c * 3) % 5) as f64 * 0.25).unwrap();
        let pairs: Vec<(Matrix<f64>, Matrix<f64>)> = seed
            .chunks(64)
            .map(|chunk| {
                let x = Matrix::from_fn(8, 8, |r, c| chunk[r * 8 + c]).unwrap();
                let y = conv2d_circular(&x, &k).unwrap();
                (x, y)
            })
            .collect();
        let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
        let reference =
            explain_batch_on(&TpuAccel::with_cores(4), &model, &pairs, 4).unwrap();
        for n_devices in [1usize, 2, 4, 16] {
            let acc = TpuAccel::over_pool(
                DevicePool::with_cores(TpuConfig::tpu_v2(), n_devices, 4),
                Duration::ZERO,
                8,
            );
            let maps =
                explain_batch_parallel_on(&acc, &model, &pairs, 4, pairs.len()).unwrap();
            prop_assert_eq!(maps.len(), reference.len());
            for (a, b) in reference.iter().zip(&maps) {
                prop_assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "n_devices={} must be bit-identical",
                    n_devices
                );
            }
            prop_assert!(acc.elapsed_seconds() > 0.0);
        }
    }
}

/// A shard that panics mid-flight (while holding its chip's lock —
/// the worst case) must fail that flight with `WorkerPanicked` for
/// every queue participant, and leave neither the pool nor any chip
/// wedged.
#[test]
fn pool_recovers_from_panicking_shard_and_fails_followers() {
    let pool = Arc::new(DevicePool::new(TpuConfig::small_test(), 2));
    let queue: Arc<BatchQueue<u64, u64>> = Arc::new(BatchQueue::new(
        pool.primary().clone(),
        Duration::from_secs(60),
        2,
    ));
    let run_sharded = |items: Vec<u64>, crash: bool| {
        pool.run_sharded(
            items,
            |_| LaneCost {
                compute: 1.0,
                gather_bytes: 8,
            },
            move |device, lanes| {
                if crash && lanes.contains(&0) {
                    device.with(|_| panic!("chip firmware crash mid-shard"));
                }
                Ok((lanes, 0.0))
            },
        )
        .map(|run| run.results)
    };
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let run_sharded = &run_sharded;
                scope.spawn(move || {
                    // Stagger so thread 0 reliably leads the flight.
                    if i == 1 {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    queue.submit(vec![i], |_, flight| run_sharded(flight, true))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // The pool catches the shard panic, so no submitter panics: the
    // leader's dispatch lands an error and *every* participant —
    // followers included — observes WorkerPanicked.
    for outcome in outcomes {
        assert!(matches!(
            outcome.unwrap_err(),
            TensorError::WorkerPanicked { .. }
        ));
    }
    // No wedged devices: the next flight shards across every chip,
    // including the one whose lock the panicking shard poisoned.
    let served = queue
        .submit(vec![7, 8], |_, flight| run_sharded(flight, false))
        .unwrap();
    assert_eq!(served, vec![7, 8]);
    for device in pool.devices() {
        device
            .run_phase(vec![Matrix::filled(4, 4, 0.5).unwrap()], |core, s| {
                core.matmul(&s, &s)
            })
            .unwrap();
    }
}

/// The pool's merged timeline shows the strong-scaling win: the same
/// oversubscribed explanation fleet finishes faster on four chips
/// than on one, while producing identical maps.
#[test]
fn four_chips_explain_faster_than_one() {
    let k = Matrix::from_fn(16, 16, |r, c| ((r * 3 + c) % 7) as f64 * 0.2).unwrap();
    let pairs: Vec<(Matrix<f64>, Matrix<f64>)> = (0..8)
        .map(|s| {
            let x = Matrix::from_fn(16, 16, |r, c| ((r * 5 + c + s) % 9) as f64 - 4.0).unwrap();
            let y = conv2d_circular(&x, &k).unwrap();
            (x, y)
        })
        .collect();
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    let lanes = pairs.len() * 16;
    let run = |n_devices: usize| {
        let acc = TpuAccel::over_pool(
            DevicePool::with_cores(TpuConfig::tpu_v2(), n_devices, 2),
            Duration::from_secs(60),
            lanes,
        );
        let maps = explain_batch_parallel_on(&acc, &model, &pairs, 4, pairs.len()).unwrap();
        (maps, acc.elapsed_seconds())
    };
    let (maps_one, t_one) = run(1);
    let (maps_four, t_four) = run(4);
    for (a, b) in maps_one.iter().zip(&maps_four) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
    assert!(
        t_four < t_one,
        "4 chips ({t_four} s) must beat 1 chip ({t_one} s)"
    );
}

/// Pod-scale fleets: 16 and 64 chips produce bit-identical maps on
/// every interconnect fabric, while the merged clock orders the
/// fabrics by bisection bandwidth — the flat crossbar is the ideal
/// that the torus and ring degrade gracefully from.
#[test]
fn pod_scale_fleets_degrade_gracefully_by_fabric() {
    use tpu_xai::tpu::Topology;
    let k = Matrix::from_fn(16, 16, |r, c| ((r * 3 + c) % 7) as f64 * 0.2).unwrap();
    let pairs: Vec<(Matrix<f64>, Matrix<f64>)> = (0..8)
        .map(|s| {
            let x = Matrix::from_fn(16, 16, |r, c| ((r * 5 + c + s) % 9) as f64 - 4.0).unwrap();
            let y = conv2d_circular(&x, &k).unwrap();
            (x, y)
        })
        .collect();
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    let lanes = pairs.len() * 16;
    let run = |n_devices: usize, topology: Topology| {
        let acc = TpuAccel::over_pool(
            DevicePool::with_cores(TpuConfig::tpu_v2(), n_devices, 1).with_topology(topology),
            Duration::from_secs(60),
            lanes,
        );
        let maps = explain_batch_parallel_on(&acc, &model, &pairs, 4, pairs.len()).unwrap();
        let sharded = acc.pool().unwrap().sharded_flights();
        (maps, acc.elapsed_seconds(), sharded)
    };
    for n_devices in [16usize, 64] {
        let (flat_maps, t_flat, flat_sharded) = run(n_devices, Topology::flat());
        let (torus_maps, t_torus, _) = run(n_devices, Topology::torus(4));
        let (ring_maps, t_ring, _) = run(n_devices, Topology::ring());
        for (a, b) in flat_maps.iter().zip(&torus_maps) {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "torus bits at {n_devices} chips"
            );
        }
        for (a, b) in flat_maps.iter().zip(&ring_maps) {
            assert_eq!(a.as_slice(), b.as_slice(), "ring bits at {n_devices} chips");
        }
        assert!(flat_sharded > 0, "the ideal fabric must fan out");
        assert!(
            t_flat <= t_torus && t_torus <= t_ring,
            "{n_devices} chips must order flat {t_flat} s ≤ torus {t_torus} s ≤ ring {t_ring} s"
        );
    }
}

#[test]
fn device_energy_scales_with_work() {
    let x_small = spectrum_input(8, 8);
    let x_large = spectrum_input(16, 16);
    let d1 = SharedDevice::with_cores(TpuConfig::small_test(), 2);
    fft2d_on_device(&d1, &x_small).unwrap();
    let e_small = d1.energy_pj();
    let d2 = SharedDevice::with_cores(TpuConfig::small_test(), 2);
    fft2d_on_device(&d2, &x_large).unwrap();
    assert!(d2.energy_pj() > e_small);
}
