//! Integration tests of Algorithm 1 and the device-level scheduling:
//! the simulated TPU must produce host-identical numerics while its
//! clocks behave like hardware.

use tpu_xai::core::{fft2d_on_device, ifft2d_on_device};
use tpu_xai::tensor::{Complex64, Matrix};
use tpu_xai::tpu::{
    Instruction, Program, SharedDevice, SystolicArray, TpuConfig, TpuCore, TpuDevice,
};
use xai_tensor::ops::DivPolicy;

fn spectrum_input(m: usize, n: usize) -> Matrix<Complex64> {
    Matrix::from_fn(m, n, |r, c| {
        Complex64::new(
            ((r * 7 + c) % 9) as f64 - 4.0,
            ((r + c * 5) % 7) as f64 * 0.5,
        )
    })
    .unwrap()
}

#[test]
fn algorithm1_is_exact_for_every_core_count() {
    let x = spectrum_input(12, 12);
    let host = tpu_xai::fourier::fft2d(&x).unwrap();
    for cores in [1usize, 2, 3, 5, 12, 64] {
        let device = SharedDevice::with_cores(TpuConfig::small_test(), cores);
        let dev = fft2d_on_device(&device, &x).unwrap();
        assert!(host.max_abs_diff(&dev).unwrap() < 1e-9, "cores={cores}");
        let back = ifft2d_on_device(&device, &dev).unwrap();
        assert!(x.max_abs_diff(&back).unwrap() < 1e-9, "cores={cores}");
    }
}

#[test]
fn whole_distillation_runs_as_one_device_program() {
    // Compile K = F(Y) ⊘ F(X) in the frequency domain as an ISA
    // program (the "one forward pass" of the paper's §I).
    let program = Program::new(
        3,
        vec![Instruction::PointwiseDiv {
            a: 0,
            b: 1,
            dst: 2,
            policy: DivPolicy::Clamp { floor: 1e-12 },
        }],
        2,
    );
    let x = spectrum_input(8, 8);
    let k = spectrum_input(8, 8).map(|z| z * Complex64::new(0.3, 0.1));
    let fx = tpu_xai::fourier::fft2d(&x).unwrap();
    let fk = tpu_xai::fourier::fft2d(&k).unwrap();
    let fy = xai_tensor::ops::hadamard(&fx, &fk).unwrap();

    let mut core = TpuCore::new(TpuConfig::small_test());
    let recovered_spec = core.execute(&program, &[(0, fy), (1, fx)]).unwrap();
    let recovered = tpu_xai::fourier::ifft2d(&recovered_spec).unwrap();
    assert!(recovered.max_abs_diff(&k).unwrap() < 1e-8);
    assert!(core.elapsed_cycles() > 0);
    assert!(core.trace().len() >= 3); // 2 host transfers + 1 div
}

#[test]
fn systolic_array_agrees_with_quantized_matmul() {
    // The cycle-accurate PE grid and the batch int8 matmul must agree
    // bit for bit (both use i32 accumulation).
    let array = SystolicArray::new(8, 8);
    let w = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c) % 15) as i8 - 7).unwrap();
    let a = Matrix::from_fn(6, 8, |r, c| ((r * 5 + c * 2) % 13) as i8 - 6).unwrap();
    let tile = array.simulate_tile(&w, &a).unwrap();
    let expect = xai_tensor::ops::matmul(&a.map(|v| v as i32), &w.map(|v| v as i32)).unwrap();
    assert_eq!(tile.output, expect);
}

#[test]
fn communication_cost_scales_with_payload() {
    let mut device = TpuDevice::with_cores(TpuConfig::tpu_v2(), 4);
    let small: Vec<Matrix<f64>> = (0..4).map(|_| Matrix::filled(8, 8, 1.0).unwrap()).collect();
    device.cross_replica_sum(&small).unwrap();
    let t_small = device.comm_seconds();
    device.reset();
    let large: Vec<Matrix<f64>> = (0..4)
        .map(|_| Matrix::filled(64, 64, 1.0).unwrap())
        .collect();
    device.cross_replica_sum(&large).unwrap();
    assert!(device.comm_seconds() > t_small);
}

#[test]
fn device_energy_scales_with_work() {
    let x_small = spectrum_input(8, 8);
    let x_large = spectrum_input(16, 16);
    let d1 = SharedDevice::with_cores(TpuConfig::small_test(), 2);
    fft2d_on_device(&d1, &x_small).unwrap();
    let e_small = d1.energy_pj();
    let d2 = SharedDevice::with_cores(TpuConfig::small_test(), 2);
    fft2d_on_device(&d2, &x_large).unwrap();
    assert!(d2.energy_pj() > e_small);
}
