//! Property pins for the interconnect-topology cost model: the
//! invariants every fabric must satisfy for the pool's shard/don't-
//! shard oracle to stay sound, and the bit-for-bit identity that
//! keeps the default flat crossbar indistinguishable from the seed
//! `cross_replica_cost_s` charge.

use proptest::prelude::*;
use tpu_xai::tpu::{Topology, TpuConfig};

fn fabrics() -> Vec<Topology> {
    vec![
        Topology::flat(),
        Topology::ring(),
        Topology::torus(2),
        Topology::torus(4),
        Topology::torus(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flat crossbar reproduces the seed charge exactly — same
    /// bits, not merely the same value — for every payload size and
    /// participant count, so every simulated metric priced through
    /// the default topology is unchanged from the seed model.
    #[test]
    fn flat_crossbar_is_bit_identical_to_cross_replica_cost(
        bytes in 0usize..1 << 40,
        participants in 2usize..256,
    ) {
        let cfg = TpuConfig::tpu_v2();
        let flat = Topology::flat();
        prop_assert_eq!(
            flat.gather_cost_s(&cfg, bytes, participants).to_bits(),
            cfg.cross_replica_cost_s(bytes).to_bits()
        );
        prop_assert_eq!(
            flat.intra_pod_cost_s(&cfg, bytes).to_bits(),
            cfg.cross_replica_cost_s(bytes).to_bits()
        );
        prop_assert_eq!(
            cfg.collective_cost_s(bytes, participants).to_bits(),
            cfg.cross_replica_cost_s(bytes).to_bits()
        );
    }

    /// More hops never cost less: on every fabric, a transfer over a
    /// longer route is at least as expensive for the same payload.
    #[test]
    fn more_hops_never_cost_less(
        a in 0usize..64,
        b in 0usize..64,
        c in 0usize..64,
        d in 0usize..64,
        chips in 2usize..65,
        bytes in 0usize..1 << 30,
    ) {
        let cfg = TpuConfig::tpu_v2();
        for topo in fabrics() {
            let (near, far) = {
                let h1 = topo.hops(a, b, chips);
                let h2 = topo.hops(c, d, chips);
                if h1 <= h2 { ((a, b), (c, d)) } else { ((c, d), (a, b)) }
            };
            prop_assert!(
                topo.distance_cost_s(&cfg, near.0, near.1, chips, bytes)
                    <= topo.distance_cost_s(&cfg, far.0, far.1, chips, bytes),
                "{} route cost must be monotone in hop count",
                topo.name()
            );
        }
    }

    /// Gathers never get cheaper as chips join the collective.
    #[test]
    fn gathers_are_monotone_in_participants(
        participants in 2usize..65,
        bytes in 0usize..1 << 30,
    ) {
        let cfg = TpuConfig::tpu_v2();
        for topo in fabrics() {
            prop_assert!(
                topo.gather_cost_s(&cfg, bytes, participants)
                    <= topo.gather_cost_s(&cfg, bytes, participants + 1),
                "{} gather must be monotone in participants",
                topo.name()
            );
            // No fabric undercuts the ideal crossbar.
            prop_assert!(
                topo.gather_cost_s(&cfg, bytes, participants)
                    >= Topology::flat().gather_cost_s(&cfg, bytes, participants),
                "{} cannot beat the ideal crossbar",
                topo.name()
            );
        }
    }

    /// An intra-pod step never exceeds the inter-pod exchange for
    /// the same payload — the hierarchy's cheap level really is the
    /// cheap level.
    #[test]
    fn intra_pod_never_exceeds_inter_pod(
        chips in 1usize..65,
        bytes in 0usize..1 << 30,
    ) {
        let cfg = TpuConfig::tpu_v2();
        for topo in fabrics() {
            prop_assert!(
                topo.intra_pod_cost_s(&cfg, bytes)
                    <= topo.inter_pod_cost_s(&cfg, bytes, chips),
                "{} intra-pod must not exceed inter-pod at {} chips",
                topo.name(),
                chips
            );
        }
    }
}
