//! End-to-end integration tests of the full pipeline:
//! dataset → training → distillation → explanation → scoring.

use tpu_xai::core::{ImageExplainer, SolveStrategy, TraceExplainer};
use tpu_xai::data::cifar::{as_training_pairs, ImageConfig, ImageDataset};
use tpu_xai::data::mirai::{TraceConfig, TraceDataset};
use tpu_xai::nn::models::{resnet_small, vgg_small};
use tpu_xai::nn::{Tensor3, Trainer};

#[test]
fn image_pipeline_localizes_salient_blocks() {
    let dataset = ImageDataset::new(ImageConfig {
        classes: 4,
        size: 12,
        channels: 3,
        grid: 3,
        noise: 0.05,
        seed: 21,
    })
    .unwrap();
    let (train, test) = dataset.generate_split(16, 8).unwrap();

    let mut net = vgg_small(3, 12, 4, 3).unwrap();
    let reports = Trainer::new(0.05, 0.9, 8, 1)
        .fit(&mut net, &as_training_pairs(&train), 16)
        .unwrap();
    assert!(
        reports.last().unwrap().accuracy >= 0.9,
        "classifier must learn the synthetic task"
    );

    let explainer = ImageExplainer::fit(&mut net, &train, 3, SolveStrategy::default()).unwrap();
    // Held-out generalization of the explanation, not just train fit.
    let acc = explainer.localization_accuracy(&mut net, &test).unwrap();
    assert!(acc >= 0.75, "held-out localization accuracy {acc}");
}

#[test]
fn malware_pipeline_localizes_attack_cycles() {
    let dataset = TraceDataset::new(TraceConfig {
        registers: 8,
        cycles: 8,
        seed: 1,
    })
    .unwrap();
    let (train, test) = dataset.generate_split(24, 12).unwrap();
    let to_pairs = |ts: &[tpu_xai::data::mirai::RegisterTrace]| {
        ts.iter()
            .map(|t| (Tensor3::from_matrix(&t.table), t.label.class_index()))
            .collect::<Vec<_>>()
    };

    let mut net = resnet_small(1, 8, 2, 2).unwrap();
    Trainer::new(0.05, 0.9, 8, 0)
        .fit(&mut net, &to_pairs(&train), 6)
        .unwrap();

    let explainer = TraceExplainer::fit(&mut net, &train, SolveStrategy::default()).unwrap();
    let acc = explainer
        .attack_localization_accuracy(&mut net, &test)
        .unwrap();
    assert!(acc >= 0.6, "held-out attack localization accuracy {acc}");
}

#[test]
fn explanations_are_deterministic() {
    let dataset = ImageDataset::new(ImageConfig::default()).unwrap();
    let images = dataset.generate(8).unwrap();
    let mut net = vgg_small(3, 12, 4, 5).unwrap();
    let explainer1 = ImageExplainer::fit(&mut net, &images, 3, SolveStrategy::default()).unwrap();
    let ex1 = explainer1.explain(&mut net, &images[0].image).unwrap();
    let explainer2 = ImageExplainer::fit(&mut net, &images, 3, SolveStrategy::default()).unwrap();
    let ex2 = explainer2.explain(&mut net, &images[0].image).unwrap();
    assert_eq!(ex1, ex2);
}
