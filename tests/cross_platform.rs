//! Cross-platform integration tests: the three hardware models must
//! agree numerically and disagree (in the paper's order) on time.

use tpu_xai::accel::{time_region, Accelerator, CpuModel, GpuModel, TpuAccel};
use tpu_xai::core::{interpret_on, transform_roundtrip_seconds, SolveStrategy};
use tpu_xai::tensor::{conv::conv2d_circular, Matrix};

fn pairs(n: usize, size: usize) -> Vec<(Matrix<f64>, Matrix<f64>)> {
    let k = Matrix::from_fn(size, size, |r, c| ((r + c * 2) % 5) as f64 * 0.2).unwrap();
    (0..n)
        .map(|s| {
            let x = Matrix::from_fn(size, size, |r, c| {
                (((r * 13 + c * 7 + s * 3) % 17) as f64) / 17.0 - 0.5
            })
            .unwrap();
            let y = conv2d_circular(&x, &k).unwrap();
            (x, y)
        })
        .collect()
}

#[test]
fn all_platforms_compute_identical_spectral_results() {
    let x = Matrix::from_fn(16, 16, |r, c| ((r * 3 + c) % 9) as f64)
        .unwrap()
        .to_complex();
    let cpu = CpuModel::i7_3700();
    let gpu = GpuModel::gtx1080();
    let tpu = TpuAccel::tpu_v2();
    let sc = cpu.fft2d(&x).unwrap();
    let sg = gpu.fft2d(&x).unwrap();
    let st = tpu.fft2d(&x).unwrap();
    assert!(sc.max_abs_diff(&sg).unwrap() < 1e-12);
    assert!(sc.max_abs_diff(&st).unwrap() < 1e-12);
}

#[test]
fn interpretation_ordering_holds_across_sizes() {
    for size in [32usize, 64] {
        let ps = pairs(4, size);
        let cpu = CpuModel::i7_3700();
        let gpu = GpuModel::gtx1080();
        let tpu = TpuAccel::tpu_v2();
        let (_, rc) = interpret_on(&cpu, &ps, 4, SolveStrategy::default()).unwrap();
        let (_, rg) = interpret_on(&gpu, &ps, 4, SolveStrategy::default()).unwrap();
        let (_, rt) = interpret_on(&tpu, &ps, 4, SolveStrategy::default()).unwrap();
        assert!(
            rt.total_s() < rg.total_s() && rg.total_s() < rc.total_s(),
            "size {size}: tpu {} gpu {} cpu {}",
            rt.total_s(),
            rg.total_s(),
            rc.total_s()
        );
    }
}

#[test]
fn tpu_advantage_grows_with_matrix_size() {
    // Figure 4's shape: the CPU/TPU ratio must increase monotonically.
    let mut last_ratio = 0.0;
    for n in [64usize, 128, 256] {
        let cpu = CpuModel::i7_3700();
        let tpu = TpuAccel::tpu_v2();
        let tc = transform_roundtrip_seconds(&cpu, n).unwrap();
        let tt = transform_roundtrip_seconds(&tpu, n).unwrap();
        let ratio = tc / tt;
        assert!(
            ratio > last_ratio,
            "ratio not growing at {n}: {ratio} vs {last_ratio}"
        );
        last_ratio = ratio;
    }
    assert!(
        last_ratio > 10.0,
        "TPU must win by an order of magnitude at 256²"
    );
}

#[test]
fn time_region_isolates_a_phase() {
    let cpu = CpuModel::i7_3700();
    let x = Matrix::filled(32, 32, 0.5).unwrap();
    let (_, warmup) = time_region(&cpu, |a| a.matmul(&x, &x)).unwrap();
    let (_, second) = time_region(&cpu, |a| a.matmul(&x, &x)).unwrap();
    assert!(warmup > 0.0);
    // A deterministic cost model: identical kernels cost identical time.
    assert!((warmup - second).abs() < 1e-12);
}

#[test]
fn batched_contribution_matches_unbatched() {
    use tpu_xai::core::{contribution_on, contributions_batch_on, DistilledModel, Region};
    let ps = pairs(3, 16);
    let model = DistilledModel::fit(&ps, SolveStrategy::default()).unwrap();
    let (x, y) = &ps[0];
    let regions: Vec<Region> = (0..4).map(Region::Column).collect();
    for make in [0usize, 1, 2] {
        let mut acc: Box<dyn Accelerator> = match make {
            0 => Box::new(CpuModel::i7_3700()),
            1 => Box::new(GpuModel::gtx1080()),
            _ => Box::new(TpuAccel::with_cores(8)),
        };
        let batch = contributions_batch_on(acc.as_mut(), &model, x, y, &regions).unwrap();
        for (i, &r) in regions.iter().enumerate() {
            let single = contribution_on(acc.as_mut(), &model, x, y, r).unwrap();
            assert!(
                (batch[i] - single).abs() < 1e-9,
                "platform {make} region {i}: batch {} vs single {}",
                batch[i],
                single
            );
        }
    }
}
