//! Property tests for the serving front door's admission control.
//!
//! ISSUE 8's invariants, across 1/2/4 devices × 1..8 submitters:
//! the queue never exceeds its capacity, every submission resolves
//! exactly once (completed XOR shed XOR deadline-exceeded — double
//! resolution panics inside the handle), and shutdown drains or
//! rejects every in-flight handle.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::sync::Arc;
use tpu_xai::serve::{
    load_accelerator, synth_problem, DrainMode, ExplainJob, ExplainServer, Outcome, ServeConfig,
    ShedPolicy,
};
use tpu_xai::tensor::ops::DivPolicy;
use tpu_xai::tensor::{Complex64, Matrix};

fn div_job(lane: usize) -> ExplainJob {
    ExplainJob::RecoverSpectrum {
        y_spec: Matrix::from_fn(4, 4, |r, c| {
            Complex64::new((r * 4 + c + lane) as f64 + 1.0, lane as f64 * 0.5)
        })
        .unwrap(),
        x_spec: Matrix::filled(4, 4, Complex64::new(2.0, 1.0)).unwrap(),
        policy: DivPolicy::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent submitters hammering a bounded queue: occupancy
    /// never exceeds capacity, every handle resolves to exactly one
    /// of completed / shed / deadline-exceeded, and both shutdown
    /// modes leave nothing unresolved.
    #[test]
    fn admission_invariants_hold_under_concurrent_submitters(
        devices_sel in 0usize..3,
        submitters in 1usize..8,
        requests_per in 1usize..4,
        capacity in 1usize..6,
        policy_sel in 0usize..3,
        mode_sel in 0usize..2,
    ) {
        let devices = [1usize, 2, 4][devices_sel];
        let policy = [
            ShedPolicy::RejectNewest,
            ShedPolicy::RejectOldest,
            ShedPolicy::DeadlineAware,
        ][policy_sel];
        let mode = [DrainMode::Drain, DrainMode::Reject][mode_sel];
        let (model, _, _) = synth_problem(9, 8).unwrap();
        let server = Arc::new(ExplainServer::new(
            load_accelerator(devices),
            model,
            ServeConfig {
                capacity,
                policy,
                workers: 2,
                retry_budget: 0,
            },
        ));

        let handles: Vec<_> = std::thread::scope(|scope| {
            let spawned: Vec<_> = (0..submitters)
                .map(|s| {
                    let server = Arc::clone(&server);
                    scope.spawn(move || {
                        (0..requests_per)
                            .map(|r| {
                                // A third of the requests are born dead
                                // (zero deadline budget) to exercise the
                                // dequeue-time deadline check.
                                let deadline_s =
                                    if (s + r) % 3 == 0 { 0.0 } else { 3600.0 };
                                server.submit(div_job(s * 8 + r), deadline_s)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            spawned
                .into_iter()
                .flat_map(|t| t.join().expect("submitter never panics"))
                .collect()
        });

        prop_assert!(
            server.high_water() <= capacity,
            "queue occupancy {} exceeded capacity {}",
            server.high_water(),
            capacity
        );

        let server = Arc::into_inner(server).expect("all submitter clones dropped");
        server.shutdown(mode);

        prop_assert_eq!(handles.len(), submitters * requests_per);
        for h in &handles {
            prop_assert!(
                h.is_resolved(),
                "shutdown must drain or reject every in-flight handle"
            );
            // Exactly-once is enforced inside the handle (double
            // resolution panics); here we pin the disposition set.
            let outcome = h.outcome().expect("resolved");
            prop_assert!(
                matches!(
                    outcome,
                    Outcome::Completed | Outcome::Shed | Outcome::DeadlineExceeded
                ),
                "unexpected outcome {:?}",
                outcome
            );
        }
    }
}
