//! Integration tests that verify, one by one, every numbered equation
//! of the paper against the workspace implementation.

use tpu_xai::core::{occlude, DistilledModel, Region, SolveStrategy};
use tpu_xai::fourier::{dft, dft_matrix, fft2d, fft2d_via_matmul, ifft2d, Norm};
use tpu_xai::tensor::ops::{hadamard, matvec, pointwise_div, sub, DivPolicy};
use tpu_xai::tensor::{conv::conv2d_circular, Complex64, Matrix};

fn test_input(seed: usize) -> Matrix<f64> {
    let mut x = Matrix::from_fn(6, 6, |r, c| ((r * 5 + c * 3 + seed) % 11) as f64 * 0.1).unwrap();
    x[(0, 0)] += 4.0; // keep the spectrum away from zero
    x
}

fn test_kernel() -> Matrix<f64> {
    Matrix::from_fn(6, 6, |r, c| ((r * 2 + c) % 5) as f64 * 0.2 - 0.3).unwrap()
}

/// Equation 2: the distilled model is `X ∗ K = Y`.
#[test]
fn equation_2_distilled_model_is_convolution() {
    let k = test_kernel();
    let x = test_input(0);
    let y = conv2d_circular(&x, &k).unwrap();
    let model = DistilledModel::fit(
        &[(x.clone(), y.clone())],
        SolveStrategy::Wiener { lambda: 1e-12 },
    )
    .unwrap();
    // The fitted model reproduces Y through a convolution.
    let direct = conv2d_circular(&x, model.kernel()).unwrap();
    assert!(direct.max_abs_diff(&y).unwrap() < 1e-6);
}

/// Equation 3: `F(X ∗ K) = F(X) ◦ F(K)` (discrete convolution theorem).
#[test]
fn equation_3_convolution_theorem() {
    let x = test_input(1);
    let k = test_kernel();
    let lhs = fft2d(&conv2d_circular(&x, &k).unwrap().to_complex()).unwrap();
    let rhs = hadamard(
        &fft2d(&x.to_complex()).unwrap(),
        &fft2d(&k.to_complex()).unwrap(),
    )
    .unwrap();
    assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-8);
}

/// Equation 4: `K = F⁻¹(F(Y) / F(X))`.
#[test]
fn equation_4_closed_form_solution() {
    let x = test_input(2);
    let k = test_kernel();
    let y = conv2d_circular(&x, &k).unwrap();
    let fy = fft2d(&y.to_complex()).unwrap();
    let fx = fft2d(&x.to_complex()).unwrap();
    let quotient = pointwise_div(&fy, &fx, DivPolicy::Strict { tol: 1e-9 }).unwrap();
    let recovered = ifft2d(&quotient).unwrap().to_real();
    assert!(recovered.max_abs_diff(&k).unwrap() < 1e-8);
}

/// Equation 5: `con(xᵢ) = Y − X′ ∗ K` with `X′` the occluded input.
#[test]
fn equation_5_contribution_factor() {
    let x = test_input(3);
    let k = test_kernel();
    let y = conv2d_circular(&x, &k).unwrap();
    let model = DistilledModel::fit(&[(x.clone(), y.clone())], SolveStrategy::default()).unwrap();
    let region = Region::Element(2, 3);
    let x_prime = occlude(&x, region).unwrap();
    // con via the library
    let via_library = tpu_xai::core::contribution(&model, &x, &y, region).unwrap();
    // con by the equation, literally
    let literal = sub(&y, &conv2d_circular(&x_prime, model.kernel()).unwrap())
        .unwrap()
        .frobenius_norm();
    assert!((via_library - literal).abs() < 1e-6);
}

/// Equations 6–8: the 2-D DFT separates into row and column stages.
#[test]
fn equations_6_to_8_separability() {
    let x = test_input(4).to_complex();
    // Full 2-D from the definition (equation 6) == staged row/column
    // (equations 7-8), which is exactly what fft2d computes.
    let (m, n) = x.shape();
    let reference = Matrix::from_fn(m, n, |kk, ll| {
        let mut acc = Complex64::ZERO;
        for r in 0..m {
            for c in 0..n {
                acc += x[(r, c)]
                    * Complex64::twiddle((r * kk) as i64, m)
                    * Complex64::twiddle((c * ll) as i64, n);
            }
        }
        acc
    })
    .unwrap();
    let staged = fft2d(&x).unwrap();
    assert!(reference.max_abs_diff(&staged).unwrap() < 1e-8);
}

/// Equations 9–10: the 1-D DFT is the matrix product `W_M · x`.
#[test]
fn equations_9_and_10_dft_as_matvec() {
    let signal: Vec<Complex64> = (0..9)
        .map(|i| Complex64::new(((i * 4) % 7) as f64 - 3.0, (i % 3) as f64))
        .collect();
    let w = dft_matrix(9, Norm::Backward);
    let via_matrix = matvec(&w, &signal).unwrap();
    let via_dft = dft(&signal, Norm::Backward);
    for (a, b) in via_matrix.iter().zip(&via_dft) {
        assert!((*a - *b).abs() < 1e-9);
    }
}

/// Equations 11–13: `X = (W_M · x) · W_N`.
#[test]
fn equations_11_to_13_two_stage_matmul_form() {
    let x = test_input(5).to_complex();
    let via_matmul = fft2d_via_matmul(&x, Norm::Backward).unwrap();
    let via_fft = fft2d(&x).unwrap();
    assert!(via_matmul.max_abs_diff(&via_fft).unwrap() < 1e-8);
}

/// The paper's unitary convention (1/√MN in equation 6) is also
/// supported and self-consistent.
#[test]
fn ortho_normalisation_roundtrip() {
    let x = test_input(6).to_complex();
    let spec = fft2d_via_matmul(&x, Norm::Ortho).unwrap();
    let back = tpu_xai::fourier::ifft2d_via_matmul(&spec, Norm::Ortho).unwrap();
    assert!(x.max_abs_diff(&back).unwrap() < 1e-9);
    // Parseval under the unitary convention.
    assert!((x.energy() - spec.energy()).abs() < 1e-6);
}
