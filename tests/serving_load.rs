//! The deterministic serving load suite (ISSUE 8's acceptance pin).
//!
//! Everything here runs in **simulated** time: arrivals, service and
//! deadlines all live on the serving layer's `SimClock`, coupled to
//! the accelerator's simulated-seconds ledger. Nothing depends on the
//! host scheduler or wall clock, so every assertion is exact — shed
//! orderings, device charges and goodput are pinned, not bounded.

use std::sync::Arc;
use std::time::Duration;
use tpu_xai::accel::{Accelerator, TpuAccel};
use tpu_xai::core::{explain_batch_parallel_on, DistilledModel, SolveStrategy};
use tpu_xai::serve::{
    load_accelerator, run_load, synth_problem, DrainMode, ExplainJob, ExplainServer, JobOutput,
    LoadConfig, Outcome, ServeConfig, ServeError, ShedPolicy, SimServer,
};
use tpu_xai::tensor::ops::DivPolicy;
use tpu_xai::tensor::{conv::conv2d_circular, Complex64, Matrix, TensorError};

/// Admitted requests must be served bit-identically to the library's
/// own `explain_batch_parallel_on` path: the front door adds
/// scheduling, never numerics.
#[test]
fn served_maps_bit_identical_to_explain_batch_parallel_on() {
    let (model, x, y) = synth_problem(7, 8).unwrap();
    let reference = {
        let acc = load_accelerator(2);
        explain_batch_parallel_on(&*acc, &model, &[(x.clone(), y.clone())], 2, 1).unwrap()
    };

    let mut sim = SimServer::new(load_accelerator(2), model, 16, ShedPolicy::RejectNewest);
    let handles: Vec<_> = (0..5)
        .map(|i| {
            sim.submit_at(
                i as f64,
                ExplainJob::Contributions {
                    x: x.clone(),
                    y: y.clone(),
                    grid: 2,
                },
                f64::INFINITY,
            )
        })
        .collect();
    sim.drain();
    for h in handles {
        match h.wait() {
            Ok(JobOutput::Map(map)) => assert_eq!(
                map.as_slice(),
                reference[0].as_slice(),
                "served map must be bit-identical to the explain path"
            ),
            other => panic!("expected a completed map, got {other:?}"),
        }
    }
}

/// Shed requests — admission rejections and dead-on-dequeue drops —
/// must never consume device charges: the device's simulated clock
/// accounts exactly one service time per *completed* request and
/// nothing else.
#[test]
fn shed_requests_never_consume_device_charges() {
    // Calibrate one request's charge on a twin device.
    let (model, x, y) = synth_problem(42, 8).unwrap();
    let job = ExplainJob::Contributions { x, y, grid: 2 };
    let service_s = {
        let calib = load_accelerator(2);
        let mut probe = SimServer::new(
            Arc::clone(&calib),
            model.clone(),
            1,
            ShedPolicy::RejectNewest,
        );
        probe.submit_at(0.0, job.clone(), f64::INFINITY);
        probe.drain();
        calib.elapsed_seconds()
    };

    // A dense burst into a capacity-1 queue: most arrivals are shed.
    let acc = load_accelerator(2);
    let mut sim = SimServer::new(Arc::clone(&acc), model, 1, ShedPolicy::RejectNewest);
    let handles: Vec<_> = (0..24)
        .map(|i| sim.submit_at(i as f64 * service_s * 0.25, job.clone(), 1e6 * service_s))
        .collect();
    sim.drain();

    let completed = handles
        .iter()
        .filter(|h| h.outcome() == Some(Outcome::Completed))
        .count();
    let shed = handles
        .iter()
        .filter(|h| h.outcome() == Some(Outcome::Shed))
        .count();
    assert!(shed > 0, "a capacity-1 queue under a 4x burst must shed");
    assert_eq!(completed + shed, handles.len());
    let charged = acc.elapsed_seconds();
    assert!(
        (charged - completed as f64 * service_s).abs() <= 1e-12 * charged.abs(),
        "device charged {charged} s but {completed} completions cost \
         {completed} x {service_s} s: shed requests must charge nothing"
    );
}

/// `RejectOldest` vs `RejectNewest` produce different — and exactly
/// seed-reproducible — shed orderings under the same arrival process.
#[test]
fn shed_orderings_are_policy_distinct_and_seed_reproducible() {
    let base = LoadConfig {
        capacity: 2,
        oversubscription: 3.0,
        ..LoadConfig::default()
    };
    let newest = run_load(&LoadConfig {
        policy: ShedPolicy::RejectNewest,
        ..base
    })
    .unwrap();
    let oldest = run_load(&LoadConfig {
        policy: ShedPolicy::RejectOldest,
        ..base
    })
    .unwrap();

    // Same seed → identical arrival process → identical shed *count*
    // pressure, but the two policies pick different victims.
    assert_ne!(
        newest.outcomes, oldest.outcomes,
        "head-drop and tail-drop must shed different requests"
    );
    assert!(newest.shed > 0 && oldest.shed > 0);

    // Exact reproducibility: a second run of each is bit-identical.
    let newest2 = run_load(&LoadConfig {
        policy: ShedPolicy::RejectNewest,
        ..base
    })
    .unwrap();
    let oldest2 = run_load(&LoadConfig {
        policy: ShedPolicy::RejectOldest,
        ..base
    })
    .unwrap();
    assert_eq!(newest, newest2, "RejectNewest run must reproduce exactly");
    assert_eq!(oldest, oldest2, "RejectOldest run must reproduce exactly");
}

/// The acceptance criterion: under a seeded 2× oversubscribed
/// open-loop load, goodput stays ≥ 80% of single-flight capacity, no
/// completion lands past its deadline, and two identical seeded runs
/// agree on every outcome.
#[test]
fn oversubscribed_goodput_and_determinism_acceptance() {
    for policy in [
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DeadlineAware,
    ] {
        let cfg = LoadConfig {
            policy,
            ..LoadConfig::default()
        };
        let a = run_load(&cfg).unwrap();
        let b = run_load(&cfg).unwrap();
        assert_eq!(a, b, "{policy:?}: identical seeded runs must agree exactly");
        assert!((a.offered_rps / a.capacity_rps - 2.0).abs() < 1e-12);
        assert!(
            a.goodput_frac >= 0.8,
            "{policy:?}: goodput {:.3} must stay >= 0.8 of capacity",
            a.goodput_frac
        );
        assert!(
            a.max_over_deadline_s <= 0.0,
            "{policy:?}: zero requests stuck past their deadline"
        );
        assert!(a.p99_latency_s <= a.deadline_s);
        assert!(a.shed > 0, "{policy:?}: 2x oversubscription must shed");
        assert_eq!(
            a.completed + a.shed + a.deadline_exceeded + a.failed,
            cfg.requests,
            "{policy:?}: every request resolves exactly once"
        );
        assert!(a.queue_high_water <= cfg.capacity);
    }
}

/// Deadlines tighter than the queueing delay convert queued work into
/// `DeadlineExceeded` — checked at dequeue, with no device work spent
/// on dead requests.
#[test]
fn tight_deadlines_shed_at_dequeue_without_device_work() {
    let (model, x, y) = synth_problem(3, 8).unwrap();
    let acc = load_accelerator(1);
    let mut sim = SimServer::new(Arc::clone(&acc), model, 8, ShedPolicy::RejectNewest);
    let job = ExplainJob::Contributions { x, y, grid: 2 };
    // Everything arrives at t=0; deadline covers ~1.5 service times,
    // so only the first queued request can start in time.
    let probe = sim.submit_at(0.0, job.clone(), f64::INFINITY);
    sim.drain();
    let service = acc.elapsed_seconds();
    assert!(probe.wait().is_ok());

    let handles: Vec<_> = (0..4)
        .map(|_| sim.submit_at(service, job.clone(), 1.2 * service))
        .collect();
    sim.drain();
    let outcomes: Vec<_> = handles.iter().map(|h| h.outcome().unwrap()).collect();
    assert_eq!(
        outcomes,
        vec![
            Outcome::Completed,
            Outcome::DeadlineExceeded,
            Outcome::DeadlineExceeded,
            Outcome::DeadlineExceeded,
        ],
        "only the head of the queue makes its deadline"
    );
    // Exactly both deadline paths fire: request 1 started in time but
    // its result landed stale (the completion check — it did charge
    // the device), requests 2–3 were dead at dequeue and charged
    // nothing. Probe + head + request 1 = three service times total.
    assert!(
        (acc.elapsed_seconds() - 3.0 * service).abs() <= 1e-12 * acc.elapsed_seconds(),
        "dead-on-dequeue requests must not charge the device"
    );
    for h in &handles[1..] {
        assert!(matches!(
            h.poll(),
            Some(Err(ServeError::DeadlineExceeded { missed_by_s })) if missed_by_s > 0.0
        ));
    }
}

/// ISSUE 8's regression pin for ROADMAP's known gap, lifted to the
/// serve layer: a `DivPolicy::Strict` ÷0 in one request errors only
/// that submitter's handle while its flight-mates — coalesced into
/// the same device flight by the batching accelerator — complete.
#[test]
fn strict_div_by_zero_errors_one_handle_flight_mates_complete() {
    let n = 8usize;
    let spec = |bias: f64| {
        Matrix::from_fn(n, n, |r, c| {
            Complex64::new(((r * 3 + c) % 5) as f64 + bias, (c % 3) as f64 * 0.5)
        })
        .unwrap()
    };
    let poisoned = {
        let mut m = spec(1.0);
        m[(2, 3)] = Complex64::ZERO;
        m
    };
    let (model, _, _) = synth_problem(1, n).unwrap();

    // 4 server workers, a 4-lane flight threshold and a long straggler
    // window: all four div lanes coalesce into ONE flight.
    let acc: Arc<dyn Accelerator> =
        Arc::new(TpuAccel::with_cores(4).with_batching(Duration::from_secs(60), 4));
    let server = ExplainServer::new(
        Arc::clone(&acc),
        model,
        ServeConfig {
            capacity: 16,
            policy: ShedPolicy::RejectNewest,
            workers: 4,
            retry_budget: 0,
        },
    );
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let x_spec = if i == 2 {
                poisoned.clone()
            } else {
                spec(1.0 + i as f64)
            };
            server.submit(
                ExplainJob::RecoverSpectrum {
                    y_spec: spec(7.0),
                    x_spec,
                    policy: DivPolicy::Strict { tol: 1e-12 },
                },
                3600.0,
            )
        })
        .collect();
    let results: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    server.shutdown(DrainMode::Drain);

    for (i, result) in results.iter().enumerate() {
        if i == 2 {
            assert!(
                matches!(
                    result,
                    Err(ServeError::Kernel(TensorError::DivisionByZero { index: _ }))
                ),
                "the poisoned request must fail strict ÷0, got {result:?}"
            );
        } else {
            assert!(
                matches!(result, Ok(JobOutput::Spectrum(_))),
                "flight-mate {i} must complete despite lane 2's ÷0, got {result:?}"
            );
        }
    }
}

/// The accelerator's queue-introspection hook feeds serving
/// backpressure: lanes parked behind a straggler window are visible
/// through `Accelerator::queue_depth` / `ExplainServer::pressure`.
#[test]
fn queue_depth_exposes_parked_lanes_for_backpressure() {
    let k = Matrix::from_fn(8, 8, |r, c| ((r + c) % 3) as f64 * 0.3).unwrap();
    let x = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c) % 7) as f64).unwrap();
    let y = conv2d_circular(&x, &k).unwrap();
    let model = DistilledModel::fit(&[(x, y)], SolveStrategy::default()).unwrap();

    // Without a batching queue the hook reports zero.
    let plain = TpuAccel::with_cores(2);
    assert_eq!(plain.queue_depth(), 0);

    // A 2-lane flight threshold with one worker parked: submit one
    // div lane from a helper thread, watch it sit in the queue.
    let acc: Arc<dyn Accelerator> =
        Arc::new(TpuAccel::with_cores(2).with_batching(Duration::from_secs(60), 2));
    let spec = Matrix::filled(4, 4, Complex64::ONE).unwrap();
    let parked = {
        let acc = Arc::clone(&acc);
        let (a, b) = (spec.clone(), spec.clone());
        std::thread::spawn(move || acc.pointwise_div(&a, &b, DivPolicy::default()))
    };
    while acc.queue_depth() == 0 {
        std::thread::yield_now();
    }
    assert_eq!(acc.queue_depth(), 1, "one lane parked behind the window");

    // A server over the same accelerator counts parked lanes in its
    // pressure signal even with an empty admission queue.
    let server = ExplainServer::new(Arc::clone(&acc), model, ServeConfig::default());
    assert_eq!(server.queue_len(), 0);
    assert!(server.pressure() >= 1);
    server.shutdown(DrainMode::Drain);

    // Releasing the flight: a second lane reaches the threshold.
    let spec2 = spec.clone();
    acc.pointwise_div(&spec2, &spec2, DivPolicy::default())
        .unwrap();
    parked.join().unwrap().unwrap();
    assert_eq!(acc.queue_depth(), 0);
}
