//! The seeded chaos suite: fault schedules driven through the
//! deterministic serving simulator (ISSUE 10's acceptance pin).
//!
//! Everything runs in simulated time against seeded fault plans, so
//! every assertion is exact: same seed ⇒ the same faults land at the
//! same virtual instants ⇒ bit-identical reports. The suite covers
//! all three shed policies over 2/4/16-chip pools, pins that
//! transient-retryable fault plans never change served numerics, that
//! budget exhaustion fails exactly the owning request, and that
//! quarantined chips re-admit through the serving path.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::sync::Arc;
use std::time::Duration;
use tpu_xai::accel::{Accelerator, TpuAccel};
use tpu_xai::serve::{
    run_load, synth_problem, ExplainJob, JobOutput, LoadConfig, LoadFault, Outcome, ServeError,
    ShedPolicy, SimServer,
};
use tpu_xai::tensor::{Matrix, TensorError};
use tpu_xai::tpu::{DevicePool, FaultPlan, TpuConfig};

fn pooled(devices: usize) -> Arc<TpuAccel> {
    Arc::new(TpuAccel::over_pool(
        DevicePool::new(TpuConfig::small_test(), devices),
        Duration::ZERO,
        256,
    ))
}

fn contributions(x: &Matrix<f64>, y: &Matrix<f64>, grid: usize) -> ExplainJob {
    ExplainJob::Contributions {
        x: x.clone(),
        y: y.clone(),
        grid,
    }
}

/// Same seed ⇒ same chaos: a load run under a seeded fault schedule
/// (transient kernel faults plus a mid-load fail-stop) reproduces its
/// entire report — outcome vector, latencies, fault counters — across
/// every shed policy and pool size.
#[test]
fn seeded_fault_schedules_reproduce_exactly() {
    for &policy in &[
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DeadlineAware,
    ] {
        for &devices in &[2usize, 4, 16] {
            let cfg = LoadConfig {
                requests: 32,
                devices,
                policy,
                fault: Some(LoadFault {
                    seed: 29,
                    transient_prob: 0.08,
                    fail_stop_chip: Some(devices - 1),
                    fail_stop_at_frac: 0.5,
                }),
                ..LoadConfig::default()
            };
            let a = run_load(&cfg).unwrap();
            let b = run_load(&cfg).unwrap();
            assert_eq!(a, b, "{policy:?}/{devices} chips: chaos must be seeded");
            assert!(
                a.completed > 0,
                "{policy:?}/{devices} chips: the degraded fleet still serves"
            );
            assert_eq!(
                a.fault_stats.fail_stops, 1,
                "{policy:?}/{devices} chips: the scheduled fail-stop fired"
            );
        }
    }
}

/// Retries are not free: a transiently-faulted run pays timeline
/// (retries, backoffs) but never numerics — and the pool's counters
/// record the recovery work.
#[test]
fn transient_faults_cost_timeline_not_outcome_counts() {
    let clean = run_load(&LoadConfig {
        requests: 32,
        devices: 4,
        ..LoadConfig::default()
    })
    .unwrap();
    let faulted = run_load(&LoadConfig {
        requests: 32,
        devices: 4,
        fault: Some(LoadFault::transient(13, 0.15)),
        ..LoadConfig::default()
    })
    .unwrap();
    assert!(
        faulted.fault_stats.transient_faults > 0,
        "a 15% per-shard fault rate over 32 requests must fire"
    );
    assert!(
        faulted.fault_stats.retries > 0,
        "transient faults recover through shard retries"
    );
    assert_eq!(
        clean.service_s, faulted.service_s,
        "calibration is always fault-free"
    );
    assert_eq!(
        faulted.failed, 0,
        "every transient fault recovered below the serving layer"
    );
    assert!(
        faulted.completed <= clean.completed,
        "retries and quarantines cannot increase goodput"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded all-transient-retryable fault plan serves maps
    /// bit-identical to the fault-free pool: faults and retries move
    /// work between chips and charge timeline, but numerics are a
    /// pure function of the inputs. Covers 2/4/16 chips × 1/2/7
    /// submitted requests, with varying grids so flights shard
    /// differently.
    #[test]
    fn transient_retryable_plans_serve_bit_identical_maps(
        seed in 0u64..512,
        prob in 0.05f64..0.30,
        chips_sel in 0usize..3,
        submitters_sel in 0usize..3,
    ) {
        let chips = [2usize, 4, 16][chips_sel];
        let submitters = [1usize, 2, 7][submitters_sel];
        let (model, x, y) = synth_problem(seed % 13, 8).unwrap();

        let serve_all = |acc: Arc<TpuAccel>| {
            let mut sim = SimServer::new(
                Arc::<TpuAccel>::clone(&acc) as Arc<dyn Accelerator>,
                model.clone(),
                16,
                ShedPolicy::RejectNewest,
            );
            let handles: Vec<_> = (0..submitters)
                .map(|i| {
                    let grid = [2usize, 4, 2][i % 3];
                    sim.submit_at(i as f64, contributions(&x, &y, grid), f64::INFINITY)
                })
                .collect();
            sim.drain();
            handles
                .into_iter()
                .map(|h| match h.wait() {
                    Ok(JobOutput::Map(map)) => map,
                    other => panic!("expected a served map, got {other:?}"),
                })
                .collect::<Vec<_>>()
        };

        let reference = serve_all(pooled(chips));

        let acc = pooled(chips);
        // A generous shard-retry budget makes every fault retryable:
        // the chance of 30 consecutive faults at p ≤ 0.3 is ~1e-16.
        acc.pool()
            .unwrap()
            .install_fault_plan(FaultPlan::seeded(seed).transient(prob).with_retry_budget(30));
        let faulted = serve_all(acc);

        prop_assert_eq!(reference.len(), faulted.len());
        for (a, b) in reference.iter().zip(&faulted) {
            prop_assert_eq!(a.as_slice(), b.as_slice(), "faulted maps must be bit-identical");
        }
        prop_assert!(reference.len() == submitters);
    }
}

/// Exhausting the shard-retry budget is a *typed* per-request failure:
/// exactly the request whose flight kept faulting resolves
/// `Kernel(FaultBudgetExhausted)`; requests before (no plan) and after
/// (plan cleared) complete with bit-identical maps.
#[test]
fn budget_exhaustion_fails_exactly_the_owning_request() {
    let acc = pooled(2);
    let (model, x, y) = synth_problem(3, 8).unwrap();
    let mut sim = SimServer::new(
        Arc::<TpuAccel>::clone(&acc) as Arc<dyn Accelerator>,
        model,
        8,
        ShedPolicy::RejectNewest,
    );

    let before = sim.submit_at(0.0, contributions(&x, &y, 2), f64::INFINITY);
    sim.drain();

    // Every draw faults: the budget must exhaust, typed, not panic.
    acc.pool()
        .unwrap()
        .install_fault_plan(FaultPlan::seeded(1).transient(1.0).with_retry_budget(2));
    let doomed = sim.submit_at(1.0, contributions(&x, &y, 2), f64::INFINITY);
    sim.drain();

    acc.pool().unwrap().clear_fault_plan();
    let after = sim.submit_at(2.0, contributions(&x, &y, 2), f64::INFINITY);
    sim.drain();

    let reference = match before.wait() {
        Ok(JobOutput::Map(map)) => map,
        other => panic!("pre-fault request must complete, got {other:?}"),
    };
    match doomed.wait() {
        Err(ServeError::Kernel(TensorError::FaultBudgetExhausted { attempts, .. })) => {
            assert_eq!(attempts, 3, "initial try plus the 2-retry budget");
        }
        other => panic!("expected FaultBudgetExhausted, got {other:?}"),
    }
    assert_eq!(doomed.outcome(), Some(Outcome::Failed));
    match after.wait() {
        Ok(JobOutput::Map(map)) => assert_eq!(
            map.as_slice(),
            reference.as_slice(),
            "the pool recovers bit-identically once the plan clears"
        ),
        other => panic!("post-fault request must complete, got {other:?}"),
    }
    assert_eq!(
        acc.pool().unwrap().fault_stats().budget_exhausted,
        1,
        "exactly one flight exhausted its budget"
    );
}

/// A transiently-quarantined chip re-admits through the serving path:
/// the first flight faults it out, a later request's flight (past the
/// cooldown) probes and re-admits it, and the pool ends whole again.
#[test]
fn transient_quarantine_readmits_through_serving() {
    let acc = pooled(2);
    let (model, x, y) = synth_problem(5, 8).unwrap();

    // Force exactly the first draw (device 0's first shard) to fault.
    acc.pool().unwrap().install_fault_plan(
        FaultPlan::seeded(9)
            .transient_draw(0)
            .with_cooldown_s(1.0e-3),
    );

    let reference = {
        let clean = pooled(2);
        let mut sim = SimServer::new(
            Arc::<TpuAccel>::clone(&clean) as Arc<dyn Accelerator>,
            model.clone(),
            8,
            ShedPolicy::RejectNewest,
        );
        let h = sim.submit_at(0.0, contributions(&x, &y, 2), f64::INFINITY);
        sim.drain();
        match h.wait() {
            Ok(JobOutput::Map(map)) => map,
            other => panic!("expected a map, got {other:?}"),
        }
    };

    let mut sim = SimServer::new(
        Arc::<TpuAccel>::clone(&acc) as Arc<dyn Accelerator>,
        model,
        8,
        ShedPolicy::RejectNewest,
    );
    let first = sim.submit_at(0.0, contributions(&x, &y, 2), f64::INFINITY);
    sim.drain();
    match first.wait() {
        Ok(JobOutput::Map(map)) => assert_eq!(
            map.as_slice(),
            reference.as_slice(),
            "the retried flight serves bit-identical numerics"
        ),
        other => panic!("expected a map, got {other:?}"),
    }
    let pool = acc.pool().unwrap();
    assert_eq!(pool.fault_stats().transient_faults, 1);
    assert_eq!(pool.fault_stats().quarantines, 1);
    assert_eq!(
        pool.healthy_devices(),
        1,
        "the faulted chip sits in quarantine until its cooldown"
    );

    // A request far past the cooldown probes and re-admits the chip.
    let second = sim.submit_at(1.0, contributions(&x, &y, 2), f64::INFINITY);
    sim.drain();
    assert!(matches!(second.wait(), Ok(JobOutput::Map(_))));
    assert!(pool.fault_stats().probes >= 1, "the cooldown probe ran");
    assert!(pool.fault_stats().readmissions >= 1, "the chip re-admitted");
    assert_eq!(pool.healthy_devices(), 2, "the pool is whole again");
}

/// Degraded-mode admission: when half the pool fail-stops, the
/// simulator's effective admission capacity halves at the next
/// arrival, so a burst sheds earlier than it would against a healthy
/// fleet.
#[test]
fn fail_stop_shrinks_admission_capacity() {
    let acc = pooled(4);
    acc.pool()
        .unwrap()
        .install_fault_plan(FaultPlan::seeded(21).fail_stop(0, 0.0).fail_stop(1, 0.0));
    assert_eq!(acc.healthy_fraction(), 0.5);

    let (model, x, y) = synth_problem(1, 8).unwrap();
    let mut sim = SimServer::new(
        Arc::<TpuAccel>::clone(&acc) as Arc<dyn Accelerator>,
        model,
        8,
        ShedPolicy::RejectNewest,
    );
    // A burst of 10 arrivals before any service: a healthy queue of 8
    // would shed 2; the half-dead fleet's effective bound is 4.
    let handles: Vec<_> = (0..10)
        .map(|i| sim.submit_at(i as f64 * 1.0e-9, contributions(&x, &y, 2), f64::INFINITY))
        .collect();
    let shed_now = handles
        .iter()
        .filter(|h| h.outcome() == Some(Outcome::Shed))
        .count();
    assert_eq!(
        shed_now, 6,
        "admission shrinks to ceil(8 × 0.5) = 4, shedding 6 of 10"
    );
    sim.drain();
    let completed = handles
        .iter()
        .filter(|h| h.outcome() == Some(Outcome::Completed))
        .count();
    assert_eq!(completed, 4, "the survivors serve everything admitted");
}
