//! Integration tests of the file-format loaders feeding the full
//! pipeline: bytes in → trained model → explanation out.

use tpu_xai::core::{SolveStrategy, TraceExplainer};
use tpu_xai::data::io::{parse_cifar, parse_trace_table, CifarFormat, CIFAR_SIZE};
use tpu_xai::data::mirai::{TraceLabel, ATTACK_REGISTER, ATTACK_SIGNATURE};
use tpu_xai::nn::layers::{Dense, Relu};
use tpu_xai::nn::models::resnet_small;
use tpu_xai::nn::{Network, Tensor3, Trainer};

/// Builds a CIFAR-format byte stream with two visually separable
/// classes (bright top half vs bright bottom half).
fn synthetic_cifar_bytes(n_per_class: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in 0..n_per_class {
        for class in 0..2u8 {
            bytes.push(class); // CIFAR-10 label byte
            for c in 0..3 {
                for y in 0..CIFAR_SIZE {
                    for x in 0..CIFAR_SIZE {
                        let bright = if class == 0 { y < 16 } else { y >= 16 };
                        let base: u8 = if bright { 200 } else { 40 };
                        let jitter = ((x + y * 3 + c + i) % 17) as u8;
                        bytes.push(base.saturating_add(jitter));
                    }
                }
            }
        }
    }
    bytes
}

#[test]
fn cifar_bytes_train_a_classifier() {
    let bytes = synthetic_cifar_bytes(6);
    let records = parse_cifar(&bytes[..], CifarFormat::Cifar10).unwrap();
    assert_eq!(records.len(), 12);
    // A small dense head on the raw pixels separates the two classes.
    let mut net = Network::new();
    net.push(Box::new(Dense::new(3 * 32 * 32, 16, 0).unwrap()));
    net.push(Box::new(Relu::new(16, 1, 1)));
    net.push(Box::new(Dense::new(16, 2, 1).unwrap()));
    let pairs: Vec<(Tensor3, usize)> = records.iter().map(|r| (r.image.clone(), r.label)).collect();
    Trainer::new(0.05, 0.9, 4, 0)
        .fit(&mut net, &pairs, 6)
        .unwrap();
    let acc = net.accuracy(&pairs).unwrap();
    assert!(acc >= 0.9, "accuracy on parsed CIFAR bytes: {acc}");
}

/// Writes a trace in the Figure 6 text format and renders it back.
fn trace_text(attack_cycle: Option<usize>) -> String {
    let mut s = String::from("# synthetic trace\n");
    for r in 0..8 {
        let mut row = Vec::new();
        for c in 0..8 {
            let v = if Some(c) == attack_cycle && r == ATTACK_REGISTER {
                ATTACK_SIGNATURE
            } else {
                ((r * 7 + c * 3) % 96) as i16
            };
            row.push(format!("{v:02X}"));
        }
        s.push_str(&row.join(" "));
        s.push('\n');
    }
    s
}

#[test]
fn trace_text_roundtrips_into_the_explainer() {
    // Parse a mixed set of textual traces and run the explanation
    // pipeline on them.
    let traces: Vec<_> = (0..12)
        .map(|i| {
            let attack = if i % 2 == 1 {
                Some(1 + (i * 3) % 6)
            } else {
                None
            };
            parse_trace_table(trace_text(attack).as_bytes()).unwrap()
        })
        .collect();
    assert_eq!(
        traces
            .iter()
            .filter(|t| t.label == TraceLabel::Malicious)
            .count(),
        6
    );

    let pairs: Vec<_> = traces
        .iter()
        .map(|t| (Tensor3::from_matrix(&t.table), t.label.class_index()))
        .collect();
    let mut net = resnet_small(1, 8, 2, 4).unwrap();
    Trainer::new(0.05, 0.9, 6, 0)
        .fit(&mut net, &pairs, 5)
        .unwrap();

    let explainer = TraceExplainer::fit(&mut net, &traces, SolveStrategy::default()).unwrap();
    let acc = explainer
        .attack_localization_accuracy(&mut net, &traces)
        .unwrap();
    assert!(acc >= 0.8, "parsed-trace localization {acc}");
}

#[test]
fn augmented_parsed_data_keeps_ground_truth_valid() {
    use tpu_xai::data::augment::{augment, AugmentConfig};
    use tpu_xai::data::cifar::{ImageConfig, ImageDataset};

    let ds = ImageDataset::new(ImageConfig::default()).unwrap();
    let images = ds.generate(8).unwrap();
    let augmented = augment(
        &images,
        3,
        AugmentConfig {
            flip_probability: 1.0,
            max_shift: 0,
            seed: 5,
        },
        1,
    )
    .unwrap();
    // Flipped copies still have their salient block as the brightest.
    let block = ds.config().size / ds.config().grid;
    for li in &augmented {
        let (by, bx) = li.salient_block;
        let mut best = f64::NEG_INFINITY;
        let mut best_block = (0, 0);
        for gy in 0..3 {
            for gx in 0..3 {
                let mut sum = 0.0;
                for c in 0..li.image.channels() {
                    for dy in 0..block {
                        for dx in 0..block {
                            sum += li.image.get(c, gy * block + dy, gx * block + dx);
                        }
                    }
                }
                if sum > best {
                    best = sum;
                    best_block = (gy, gx);
                }
            }
        }
        assert_eq!(best_block, (by, bx));
    }
}
