//! Reproduction gate: asserts that the headline claims of the paper's
//! evaluation hold in this implementation — the same checks the
//! benchmark binaries print, locked down as tests so regressions in
//! the models or schedulers are caught immediately.

use tpu_xai::accel::{Accelerator, CpuModel, GpuModel, TpuAccel};
use tpu_xai::core::{
    interpret_on, transform_roundtrip_seconds, LimeExplainer, Region, SolveStrategy,
};
use tpu_xai::tensor::{conv::conv2d_circular, Matrix};

fn pairs(n: usize, size: usize) -> Vec<(Matrix<f64>, Matrix<f64>)> {
    let k = Matrix::from_fn(size, size, |r, c| ((r * 2 + c * 3) % 7) as f64 * 0.15).unwrap();
    (0..n)
        .map(|s| {
            let x = Matrix::from_fn(size, size, |r, c| {
                (((r * 13 + c * 7 + s * 31) % 23) as f64) / 23.0 - 0.5
            })
            .unwrap();
            let y = conv2d_circular(&x, &k).unwrap();
            (x, y)
        })
        .collect()
}

/// Figure 4's headline: >30× over the CPU baseline at large sizes.
/// The gate runs at 512² to stay fast under `cargo test` (the ratio
/// grows monotonically with size — asserted below — so the 1024²
/// claim follows; the fig4 binary prints the full sweep).
#[test]
fn figure4_tpu_beats_cpu_by_over_30x_at_scale() {
    let cpu = CpuModel::i7_3700();
    let tpu = TpuAccel::tpu_v2();
    let t256 = transform_roundtrip_seconds(&cpu, 256).unwrap()
        / transform_roundtrip_seconds(&tpu, 256).unwrap();
    let t512 = transform_roundtrip_seconds(&cpu, 512).unwrap()
        / transform_roundtrip_seconds(&tpu, 512).unwrap();
    assert!(t512 > t256, "advantage must grow with size");
    assert!(
        t512 > 30.0,
        "paper claims >30x; measured {t512:.1}x at 512²"
    );
}

/// Table II's ordering and order-of-magnitude claims on the
/// interpretation pipeline.
#[test]
fn table2_interpretation_speedups_in_paper_band() {
    let ps = pairs(4, 128);
    let cpu = CpuModel::i7_3700();
    let gpu = GpuModel::gtx1080();
    let tpu = TpuAccel::tpu_v2();
    let (_, rc) = interpret_on(&cpu, &ps, 4, SolveStrategy::default()).unwrap();
    let (_, rg) = interpret_on(&gpu, &ps, 4, SolveStrategy::default()).unwrap();
    let (_, rt) = interpret_on(&tpu, &ps, 4, SolveStrategy::default()).unwrap();
    let vs_cpu = rc.total_s() / rt.total_s();
    let vs_gpu = rg.total_s() / rt.total_s();
    // Paper: 39.5x / 13.6x on ResNet50-shaped inputs. Accept the same
    // decade with generous margins (our CPU model is more
    // bandwidth-bound than the testbed's).
    assert!(vs_cpu > 10.0, "TPU/CPU interpretation speedup {vs_cpu:.1}x");
    assert!(vs_gpu > 5.0, "TPU/GPU interpretation speedup {vs_gpu:.1}x");
}

/// §I's premise: the closed form beats the iterative surrogate by an
/// order of magnitude in *real* wall-clock on the same task.
#[test]
fn closed_form_beats_iterative_baseline_in_wall_clock() {
    use std::time::Instant;
    use tpu_xai::core::{block_contributions, DistilledModel};

    let ps = pairs(4, 16);
    let k_hidden = Matrix::from_fn(16, 16, |r, c| ((r + c) % 5) as f64 * 0.2).unwrap();
    let score = |x: &Matrix<f64>| -> Result<f64, tpu_xai::tensor::TensorError> {
        Ok(conv2d_circular(x, &k_hidden)?.frobenius_norm())
    };
    let regions: Vec<Region> = (0..4)
        .flat_map(|by| (0..4).map(move |bx| Region::Block(by * 4, bx * 4, 4, 4)))
        .collect();

    let t0 = Instant::now();
    let model = DistilledModel::fit(&ps, SolveStrategy::default()).unwrap();
    for (x, y) in &ps {
        block_contributions(&model, x, y, 4).unwrap();
    }
    let fast = t0.elapsed().as_secs_f64();

    let lime = LimeExplainer::new(200, 0);
    let t0 = Instant::now();
    for (x, _) in &ps {
        lime.explain(score, x, &regions).unwrap();
    }
    let slow = t0.elapsed().as_secs_f64();

    assert!(
        slow > 3.0 * fast,
        "iterative {slow:.4}s should dwarf closed-form {fast:.4}s"
    );
}

/// The quantisation story of §II-A: int8 is the fast path and its
/// error is bounded.
#[test]
fn quantisation_error_is_bounded_on_tpu_matmul() {
    let tpu = TpuAccel::tpu_v2();
    let a = Matrix::from_fn(32, 32, |r, c| (((r * 7 + c * 3) % 17) as f64) / 17.0 - 0.5).unwrap();
    let exact = tpu_xai::tensor::ops::matmul(&a, &a).unwrap();
    let got = tpu.matmul(&a, &a).unwrap();
    let rel = exact.max_abs_diff(&got).unwrap() / exact.max_abs().max(1e-12);
    assert!(rel < 0.05, "relative int8 error {rel}");
}

/// Energy: the TPU must be the most efficient platform on the
/// interpretation workload (§IV-B).
#[test]
fn tpu_is_most_energy_efficient() {
    let ps = pairs(6, 64);
    let cpu = CpuModel::i7_3700();
    interpret_on(&cpu, &ps, 4, SolveStrategy::default()).unwrap();
    let e_cpu = cpu.stats().ops * 50.0 + cpu.stats().bytes * 10.0;

    let tpu = TpuAccel::tpu_v2();
    interpret_on(&tpu, &ps, 4, SolveStrategy::default()).unwrap();
    let e_tpu = tpu.energy_pj();
    assert!(
        e_tpu < e_cpu,
        "tpu {e_tpu:.3e} pJ should undercut cpu {e_cpu:.3e} pJ"
    );
}
