//! Concurrency integration tests: the refactored execution layer's
//! whole point is that ONE accelerator (and one plan cache) can be
//! shared across worker threads with results bit-identical to serial
//! execution. These tests pin that contract for all three platforms.

use std::sync::Arc;
use tpu_xai::accel::{Accelerator, CpuModel, GpuModel, TpuAccel};
use tpu_xai::core::{explain_batch_on, explain_batch_parallel_on, DistilledModel, SolveStrategy};
use tpu_xai::fourier::{Fft2d, PlanCache};
use tpu_xai::tensor::{conv::conv2d_circular, Complex64, Matrix};

fn batch(n: usize, size: usize) -> Vec<(Matrix<f64>, Matrix<f64>)> {
    let k = Matrix::from_fn(size, size, |r, c| ((r * 2 + c * 3) % 7) as f64 * 0.15).unwrap();
    (0..n)
        .map(|s| {
            let x = Matrix::from_fn(size, size, |r, c| {
                (((r * 13 + c * 7 + s * 31) % 23) as f64) / 23.0 - 0.5
            })
            .unwrap();
            let y = conv2d_circular(&x, &k).unwrap();
            (x, y)
        })
        .collect()
}

fn platforms() -> Vec<Arc<dyn Accelerator>> {
    vec![
        Arc::new(CpuModel::i7_3700()),
        Arc::new(GpuModel::gtx1080()),
        Arc::new(TpuAccel::with_cores(8)),
    ]
}

#[test]
fn two_threads_sharing_one_accelerator_match_serial_bit_for_bit() {
    let pairs = batch(8, 16);
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    for shared in platforms() {
        let name = shared.name();
        // Serial reference on a fresh accelerator of the same kind.
        let serial = explain_batch_on(&*shared, &model, &pairs, 4).unwrap();
        shared.reset();

        // Two worker threads drive the ONE shared Arc<dyn Accelerator>.
        let parallel = explain_batch_parallel_on(&*shared, &model, &pairs, 4, 2).unwrap();
        assert_eq!(parallel.len(), serial.len(), "{name}");
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.as_slice(), b.as_slice(), "{name}: not bit-identical");
        }
        // Both threads charged the single shared clock.
        assert!(shared.elapsed_seconds() > 0.0, "{name}");
    }
}

#[test]
fn shared_clock_accumulates_exactly_like_serial_execution() {
    // Simulated time is a sum of per-kernel charges, so the total must
    // not depend on thread interleaving.
    let pairs = batch(6, 16);
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    for shared in platforms() {
        let name = shared.name();
        explain_batch_on(&*shared, &model, &pairs, 4).unwrap();
        let serial_s = shared.elapsed_seconds();
        let serial_kernels = shared.stats().kernels;
        shared.reset();

        explain_batch_parallel_on(&*shared, &model, &pairs, 4, 3).unwrap();
        assert!(
            (shared.elapsed_seconds() - serial_s).abs() < 1e-12,
            "{name}: parallel clock {} vs serial {}",
            shared.elapsed_seconds(),
            serial_s
        );
        assert_eq!(shared.stats().kernels, serial_kernels, "{name}");
    }
}

#[test]
fn one_plan_cache_shared_by_worker_threads_builds_each_plan_once() {
    let cache = PlanCache::new();
    let x = Matrix::from_fn(32, 32, |r, c| {
        Complex64::new(((r * 5 + c) % 11) as f64 - 5.0, ((r + c * 3) % 7) as f64)
    })
    .unwrap();
    let reference = cache.plan_2d(32, 32).forward(&x).unwrap();

    let spectra: Vec<(Arc<Fft2d>, Matrix<Complex64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = &cache;
                let x = &x;
                scope.spawn(move || {
                    let plan = cache.plan_2d(32, 32);
                    let spec = plan.forward(x).unwrap();
                    (plan, spec)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // One plan (pointer-identical across threads), bit-identical
    // output everywhere.
    assert_eq!(cache.len(), 1);
    for (plan, spec) in &spectra {
        assert!(Arc::ptr_eq(plan, &spectra[0].0));
        assert_eq!(spec.as_slice(), reference.as_slice());
    }
}

#[test]
fn batch_queue_coalesces_concurrent_explanations_bit_identically() {
    use std::time::Duration;
    // 8 request threads, one pair each, grid 4 → 16 regions per
    // request. With the cross-request queue sized to the full lane
    // count, the 8 forward (and 8 inverse) submissions coalesce into
    // ONE device flight each.
    let pairs = batch(8, 16);
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    let lanes = 8 * 16;

    let serial_acc = TpuAccel::with_cores(lanes);
    let serial = explain_batch_on(&serial_acc, &model, &pairs, 4).unwrap();

    // Per-request dispatch: every request pays its own phases and
    // collectives on the shared device.
    let per_request: Arc<TpuAccel> = Arc::new(TpuAccel::with_cores(lanes));
    explain_batch_parallel_on(&*per_request, &model, &pairs, 4, 8).unwrap();

    // Coalesced dispatch through the batching queue.
    let batched: Arc<TpuAccel> =
        Arc::new(TpuAccel::with_cores(lanes).with_batching(Duration::from_secs(60), lanes));
    let maps = explain_batch_parallel_on(&*batched, &model, &pairs, 4, 8).unwrap();

    assert_eq!(maps.len(), serial.len());
    for (a, b) in serial.iter().zip(&maps) {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "coalescing must not change numerics"
        );
    }
    // O(phases) device dispatches, not O(requests·phases): one
    // forward flight + one inverse flight → 2 collectives each.
    assert_eq!(batched.device().collectives(), 4);
    assert_eq!(per_request.device().collectives(), 8 * 4);
    let speedup = per_request.elapsed_seconds() / batched.elapsed_seconds();
    assert!(
        speedup >= 2.0,
        "coalesced serving must be ≥2x faster on the device clock, got {speedup:.2}x"
    );
}

#[test]
fn panicked_worker_does_not_wedge_shared_device() {
    // One request crashing mid-schedule poisons the device lock; the
    // ledger stays consistent, so every later request must still be
    // served — the serving process must not turn one bad request
    // into a total outage.
    let pairs = batch(4, 16);
    let model = DistilledModel::fit(&pairs, SolveStrategy::default()).unwrap();
    let shared: Arc<TpuAccel> = Arc::new(TpuAccel::with_cores(4));

    let crashing = shared.device();
    let handle = std::thread::spawn(move || crashing.with(|_| panic!("simulated bad request")));
    assert!(handle.join().is_err(), "the bad request must have panicked");

    // Subsequent requests — serial and multi-threaded — still serve.
    let after = explain_batch_parallel_on(&*shared, &model, &pairs, 4, 2).unwrap();
    assert_eq!(after.len(), pairs.len());
    assert!(shared.elapsed_seconds() > 0.0);
}

#[test]
fn many_threads_and_platforms_hammer_the_global_plan_cache() {
    // CPU, GPU and TPU front-ends all pull 2-D plans from the global
    // cache concurrently; every result must equal the single-threaded
    // reference transform.
    let x = Matrix::from_fn(24, 24, |r, c| ((r * 7 + c * 5) % 13) as f64)
        .unwrap()
        .to_complex();
    let reference = tpu_xai::fourier::fft2d(&x).unwrap();
    let accs = platforms();
    std::thread::scope(|scope| {
        for acc in &accs {
            for _ in 0..3 {
                let acc = Arc::clone(acc);
                let x = x.clone();
                let reference = reference.clone();
                scope.spawn(move || {
                    let spec = acc.fft2d(&x).unwrap();
                    assert!(spec.max_abs_diff(&reference).unwrap() < 1e-12);
                    let back = acc.ifft2d(&spec).unwrap();
                    assert!(back.max_abs_diff(&x).unwrap() < 1e-9);
                });
            }
        }
    });
    for acc in &accs {
        assert_eq!(acc.stats().kernels, 6, "{}", acc.name());
    }
}
