//! Integration tests of kernel-generic flights: one [`BatchQueue`]
//! dispatch may mix transform, elementwise and matmul lanes, the
//! whole mixed flight shards across a [`DevicePool`] when the cost
//! model says the fleet wins, and the pool's merged timeline stays a
//! single-fold ledger of every chip's `timed` charges.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tpu_xai::accel::{Accelerator, TpuAccel};
use tpu_xai::tensor::{Complex64, Matrix, TensorError};
use tpu_xai::tpu::{BatchQueue, DevicePool, KernelJob, KernelResult, LaneCost, TpuConfig};
use xai_tensor::ops;

fn complex_input(n: usize, seed: usize) -> Matrix<Complex64> {
    Matrix::from_fn(n, n, |r, c| {
        Complex64::new(
            ((r * 7 + c * 3 + seed) % 9) as f64 - 4.0,
            ((r + c * 5 + seed * 2) % 7) as f64 * 0.5,
        )
    })
    .unwrap()
}

/// Concurrent workers submitting `fft2d_batch` and `hadamard_batch`
/// in the same batching window coalesce into ONE mixed-kind flight —
/// pinned by the per-flight statistics ledger — and each worker gets
/// exactly its own lanes back, bit-identical to the direct paths.
#[test]
fn transforms_and_hadamards_coalesce_into_one_mixed_flight() {
    let lanes_per_kind = 16usize;
    let xs: Vec<Matrix<Complex64>> = (0..lanes_per_kind).map(|s| complex_input(12, s)).collect();
    let k = complex_input(12, 99);

    let plain = TpuAccel::with_cores(4);
    let fft_ref = plain.fft2d_batch(&xs).unwrap();
    let had_ref = plain.hadamard_batch(&xs, &k).unwrap();

    // max_lanes equals the two submissions' total, so the flight
    // dispatches the moment both workers are in — deterministic
    // mixed-kind coalescing (the long window is the straggler guard).
    let acc = Arc::new(
        TpuAccel::with_cores(4).with_batching(Duration::from_secs(60), 2 * lanes_per_kind),
    );
    std::thread::scope(|scope| {
        let fft_acc = Arc::clone(&acc);
        let fft_xs = xs.clone();
        let fft_ref = fft_ref.clone();
        scope.spawn(move || {
            let out = fft_acc.fft2d_batch(&fft_xs).unwrap();
            for (a, b) in fft_ref.iter().zip(&out) {
                assert_eq!(a.as_slice(), b.as_slice(), "transform lanes in lane order");
            }
        });
        let had_acc = Arc::clone(&acc);
        let had_xs = xs.clone();
        let had_k = k.clone();
        let had_ref = had_ref.clone();
        scope.spawn(move || {
            let out = had_acc.hadamard_batch(&had_xs, &had_k).unwrap();
            for (a, b) in had_ref.iter().zip(&out) {
                assert_eq!(a.as_slice(), b.as_slice(), "hadamard lanes in lane order");
            }
        });
    });
    // The statistics ledger records one entry per flight: both
    // submissions must have ridden a single mixed dispatch.
    assert_eq!(
        acc.stats().kernels,
        1,
        "fft and hadamard submissions must coalesce into one flight"
    );
}

/// A leader whose dispatch panics on one *kind* of lane fails every
/// follower of the whole mixed flight with `WorkerPanicked` — no kind
/// is unwound selectively, and the queue serves the next flight.
#[test]
fn panic_in_one_kind_fails_the_whole_mixed_flight() {
    let pool = DevicePool::new(TpuConfig::small_test(), 2);
    let queue: Arc<BatchQueue<KernelJob, KernelResult>> = Arc::new(BatchQueue::new(
        pool.primary().clone(),
        Duration::from_secs(60),
        2,
    ));
    let dispatch = |flight: Vec<KernelJob>, crash_on_elementwise: bool| {
        flight
            .into_iter()
            .map(|job| match job {
                KernelJob::Transform { x, .. } => Ok(KernelResult::Complex(x)),
                KernelJob::Hadamard { a, b } => {
                    if crash_on_elementwise {
                        panic!("vector unit fault mid-flight");
                    }
                    Ok(KernelResult::Complex(ops::hadamard(&a, &b)?))
                }
                other => panic!("unqueued kind {}", other.kind()),
            })
            .collect::<Result<Vec<_>, TensorError>>()
    };
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let transform_lane = {
            let queue = Arc::clone(&queue);
            scope.spawn(move || {
                queue.submit(
                    vec![KernelJob::Transform {
                        x: complex_input(4, 0),
                        forward: true,
                    }],
                    |_, flight| dispatch(flight, true),
                )
            })
        };
        let hadamard_lane = {
            let queue = Arc::clone(&queue);
            scope.spawn(move || {
                // Stagger so the transform submitter reliably leads.
                std::thread::sleep(Duration::from_millis(50));
                queue.submit(
                    vec![KernelJob::Hadamard {
                        a: complex_input(4, 1),
                        b: Arc::new(complex_input(4, 2)),
                    }],
                    |_, flight| dispatch(flight, true),
                )
            })
        };
        vec![
            transform_lane.join().map_err(|_| ()),
            hadamard_lane.join().map_err(|_| ()),
        ]
    });
    // Exactly one thread led and re-raised the panic; the follower —
    // whose own lane kind was fine — observed WorkerPanicked for the
    // whole flight instead of hanging.
    let panicked = outcomes.iter().filter(|r| r.is_err()).count();
    assert_eq!(panicked, 1, "exactly one leader panics: {outcomes:?}");
    let follower = outcomes
        .into_iter()
        .find_map(|r| r.ok())
        .expect("one follower outcome");
    assert!(matches!(
        follower.unwrap_err(),
        TensorError::WorkerPanicked { .. }
    ));
    // The queue is not wedged: a fresh mixed flight serves normally.
    let served = queue
        .submit(
            vec![
                KernelJob::Transform {
                    x: complex_input(4, 3),
                    forward: true,
                },
                KernelJob::Hadamard {
                    a: complex_input(4, 4),
                    b: Arc::new(complex_input(4, 5)),
                },
            ],
            |_, flight| dispatch(flight, false),
        )
        .unwrap();
    assert_eq!(served.len(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// `hadamard_batch` and `sub_batch` heavy enough to fan out must
    /// shard across 2 and 4 single-core chips — really exercising the
    /// elementwise shard path, not the primary-chip fallback — while
    /// staying bit-identical to the single-device path.
    #[test]
    fn sharded_elementwise_batches_bit_identical_across_device_counts(
        seed in proptest::collection::vec(-4.0f64..4.0, 16),
    ) {
        let lanes = 256usize;
        let n = 64usize;
        let xs: Vec<Matrix<Complex64>> = (0..lanes)
            .map(|l| {
                Matrix::from_fn(n, n, |r, c| {
                    let s = seed[(r + c + l) % seed.len()];
                    Complex64::new(s + (l % 7) as f64 * 0.25, s * 0.5 - (r % 3) as f64)
                })
                .unwrap()
            })
            .collect();
        let k = Matrix::from_fn(n, n, |r, c| {
            Complex64::new(seed[(r * 2 + c) % seed.len()], 0.75)
        })
        .unwrap();
        let y = Matrix::from_fn(n, n, |r, c| seed[(r + 2 * c) % seed.len()] * 1.5).unwrap();
        let preds: Vec<Matrix<f64>> = (0..lanes)
            .map(|l| {
                Matrix::from_fn(n, n, |r, c| seed[(r * 3 + c + l) % seed.len()] - 0.5).unwrap()
            })
            .collect();

        let plain = TpuAccel::with_cores(4);
        let had_ref = plain.hadamard_batch(&xs, &k).unwrap();
        let sub_ref = plain.sub_batch(&y, &preds).unwrap();
        for n_devices in [1usize, 2, 4, 16] {
            let pooled = TpuAccel::over_pool(
                DevicePool::with_cores(TpuConfig::tpu_v2(), n_devices, 1),
                Duration::ZERO,
                lanes,
            );
            let had = pooled.hadamard_batch(&xs, &k).unwrap();
            for (a, b) in had_ref.iter().zip(&had) {
                prop_assert_eq!(a.as_slice(), b.as_slice(), "hadamard n_devices={}", n_devices);
            }
            let sub = pooled.sub_batch(&y, &preds).unwrap();
            for (a, b) in sub_ref.iter().zip(&sub) {
                prop_assert_eq!(a.as_slice(), b.as_slice(), "sub n_devices={}", n_devices);
            }
            if n_devices > 1 {
                // Both elementwise flights really fanned out: this
                // fleet is oversubscribed enough that the cost-model
                // oracle shards them like transform flights.
                prop_assert_eq!(pooled.pool().unwrap().sharded_flights(), 2);
                for d in pooled.pool().unwrap().devices() {
                    prop_assert!(d.wall_seconds() > 0.0, "chip idle at n={}", n_devices);
                }
            }
        }
    }

    /// Queued `matmul` stays bit-identical to the direct int8 path
    /// over every pool size.
    #[test]
    fn queued_matmul_bit_identical_across_device_counts(
        seed in proptest::collection::vec(-2.0f64..2.0, 16),
    ) {
        let a = Matrix::from_fn(24, 24, |r, c| seed[(r * 5 + c) % seed.len()]).unwrap();
        let b = Matrix::from_fn(24, 24, |r, c| seed[(r + c * 3) % seed.len()] * 0.5).unwrap();
        let reference = TpuAccel::with_cores(4).matmul(&a, &b).unwrap();
        for n_devices in [1usize, 2, 4, 16] {
            let pooled = TpuAccel::with_pool(n_devices, Duration::ZERO, 4);
            let out = pooled.matmul(&a, &b).unwrap();
            prop_assert_eq!(out.as_slice(), reference.as_slice(), "n_devices={}", n_devices);
            prop_assert!(pooled.elapsed_seconds() > 0.0);
        }
    }
}

/// The merged pool timeline is a single-fold ledger: across a mixed
/// sequence of pooled flights (sharded transforms), primary-chip
/// kernels (light elementwise, single-lane matmul — folded in via
/// `advance_external`) and roofline charges, `elapsed_seconds()` must
/// equal the sum over kernels of the slowest chip's `timed` delta
/// plus the inter-chip gathers. A kernel folded into the timeline
/// twice — once by its own charge region and once by a flight merge —
/// would push the merged clock above this sum.
#[test]
fn pool_timeline_is_the_merged_sum_of_timed_charges() {
    let acc = TpuAccel::over_pool(
        DevicePool::with_cores(TpuConfig::tpu_v2(), 2, 2),
        Duration::ZERO,
        256,
    );
    let pool = acc.pool().unwrap();
    let mut expected = 0.0f64;
    let mut tracked = |f: &dyn Fn()| {
        let walls: Vec<f64> = pool
            .devices()
            .iter()
            .map(tpu_xai::tpu::SharedDevice::wall_seconds)
            .collect();
        let gather = pool.gather_seconds();
        f();
        let slowest = pool
            .devices()
            .iter()
            .zip(&walls)
            .map(|(d, w)| d.wall_seconds() - w)
            .fold(0.0f64, f64::max);
        expected += slowest + (pool.gather_seconds() - gather);
    };

    let xs: Vec<Matrix<Complex64>> = (0..8).map(|s| complex_input(16, s)).collect();
    let k = complex_input(16, 41);
    let y = Matrix::from_fn(16, 16, |r, c| (r + c) as f64).unwrap();
    let a = Matrix::from_fn(16, 16, |r, c| ((r * 3 + c) % 5) as f64 * 0.2).unwrap();

    tracked(&|| {
        acc.fft2d_batch(&xs).unwrap(); // pooled flight (sharded)
    });
    tracked(&|| {
        acc.hadamard_batch(&xs, &k).unwrap(); // light: primary chip
    });
    tracked(&|| {
        acc.matmul(&a, &a).unwrap(); // single lane: primary chip
    });
    tracked(&|| {
        acc.sub_batch(&y, &[a.clone(), y.clone()]).unwrap();
    });
    tracked(&|| {
        acc.charge_workload(1e9, 1e6); // roofline external charge
    });
    tracked(&|| {
        acc.fft2d(&xs[0]).unwrap(); // single transform lane
    });

    let elapsed = acc.elapsed_seconds();
    assert!(
        (elapsed - expected).abs() <= 1e-9 * expected,
        "merged timeline {elapsed} must equal the sum of timed charges {expected}"
    );
}

/// With a one-chip pool every kernel charges the primary device and
/// folds into the timeline exactly once, so the merged clock must
/// equal the chip's own wall clock — a double fold (charge region
/// *and* flight merge) would leave the timeline strictly ahead.
#[test]
fn single_chip_pool_timeline_equals_primary_clock() {
    let acc = TpuAccel::with_pool(1, Duration::ZERO, 64);
    let xs: Vec<Matrix<Complex64>> = (0..6).map(|s| complex_input(12, s)).collect();
    let k = complex_input(12, 17);
    let a = Matrix::from_fn(12, 12, |r, c| ((r + c * 2) % 7) as f64 * 0.3).unwrap();
    acc.fft2d_batch(&xs).unwrap();
    acc.hadamard_batch(&xs, &k).unwrap();
    acc.matmul(&a, &a).unwrap();
    acc.sub(&a, &a).unwrap();
    acc.charge_workload(1e9, 1e6);
    acc.ifft2d_batch(&xs).unwrap();
    let timeline = acc.elapsed_seconds();
    let chip = acc.device().wall_seconds();
    assert!(timeline > 0.0);
    assert!(
        (timeline - chip).abs() <= 1e-9 * chip,
        "merged timeline {timeline} must equal the primary chip clock {chip}"
    );
}

/// A mixed-kind flight shards as one unit: transform lanes make the
/// fan-out worthwhile and the elementwise lanes riding the same
/// flight are placed by the same cost-aware planner — one flight, one
/// gather, bit-identical results for both submitters.
#[test]
fn mixed_flight_shards_across_chips_as_one_unit() {
    let lanes_per_kind = 16usize;
    let xs: Vec<Matrix<Complex64>> = (0..lanes_per_kind).map(|s| complex_input(24, s)).collect();
    let k = complex_input(24, 7);
    let plain = TpuAccel::with_cores(4);
    let fft_ref = plain.fft2d_batch(&xs).unwrap();
    let had_ref = plain.hadamard_batch(&xs, &k).unwrap();

    let acc = Arc::new(TpuAccel::over_pool(
        DevicePool::with_cores(TpuConfig::tpu_v2(), 4, 2),
        Duration::from_secs(60),
        2 * lanes_per_kind,
    ));
    std::thread::scope(|scope| {
        let fft_acc = Arc::clone(&acc);
        let fft_xs = xs.clone();
        let fft_ref = fft_ref.clone();
        scope.spawn(move || {
            let out = fft_acc.fft2d_batch(&fft_xs).unwrap();
            for (a, b) in fft_ref.iter().zip(&out) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        });
        let had_acc = Arc::clone(&acc);
        let had_xs = xs.clone();
        let had_k = k.clone();
        let had_ref = had_ref.clone();
        scope.spawn(move || {
            let out = had_acc.hadamard_batch(&had_xs, &had_k).unwrap();
            for (a, b) in had_ref.iter().zip(&out) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        });
    });
    let pool = acc.pool().unwrap();
    assert_eq!(
        pool.sharded_flights(),
        1,
        "both kinds must ride one sharded flight"
    );
    assert!(pool.gather_seconds() > 0.0);
    assert_eq!(acc.stats().kernels, 1, "one ledger entry for one flight");
}

/// The planner still balances a mixed flight sensibly: LaneCost is
/// flops-consistent across kinds, so heavy transform lanes spread out
/// instead of stacking on one chip while elementwise lanes fill in.
#[test]
fn mixed_lane_costs_are_flops_consistent() {
    let t = KernelJob::Transform {
        x: complex_input(16, 0),
        forward: true,
    };
    let h = KernelJob::Hadamard {
        a: complex_input(16, 1),
        b: Arc::new(complex_input(16, 2)),
    };
    let lanes: Vec<LaneCost> = [&t, &t, &h, &h, &h, &h]
        .iter()
        .map(|j| {
            // Reconstruct the accel layer's lane costs through the
            // public planner contract: transforms must dominate.
            match j {
                KernelJob::Transform { x, .. } => {
                    let (m, n) = x.shape();
                    LaneCost {
                        compute: 12.0 * (m * m * n + m * n * n) as f64,
                        gather_bytes: 16 * m * n,
                    }
                }
                KernelJob::Hadamard { a, .. } => LaneCost {
                    compute: 6.0 * a.len() as f64,
                    gather_bytes: 16 * a.len(),
                },
                _ => unreachable!(),
            }
        })
        .collect();
    let plan = tpu_xai::tpu::ShardPlan::plan(&lanes, 2, tpu_xai::tpu::ShardStrategy::CostAware);
    // LPT: the two heavy transform lanes land on different chips; the
    // four cheap hadamard lanes backfill the lighter side.
    let chip_of = |lane: usize| {
        plan.assignments()
            .iter()
            .position(|a| a.contains(&lane))
            .unwrap()
    };
    assert_ne!(chip_of(0), chip_of(1), "transform lanes must spread");
}

/// ISSUE 10: a shard that faults transiently after charging its chip
/// clock must leave the merged timeline consistent when the flight
/// succeeds via retry. The flight folds Σ per-round makespans plus
/// the retry backoff into the timeline: the faulted round *ran* — its
/// charge counts even though its results are discarded — and the
/// retry round's charge lands on the chip that re-ran the lanes. For
/// this flight (all lanes on one chip per round) that sum is exactly
/// `chip0 + chip1 + backoff`, and the numerics stay bit-identical to
/// the clean pool.
#[test]
fn retried_flight_timeline_matches_surviving_chip_plus_backoff() {
    use tpu_xai::tpu::FaultPlan;

    let faulted = TpuAccel::over_pool(
        DevicePool::with_cores(TpuConfig::tpu_v2(), 2, 2),
        Duration::ZERO,
        256,
    );
    // Draw 0 is device 0's first shard attempt: it runs fully, gets
    // charged, then its results are discarded and the lanes retry.
    let plan = FaultPlan::seeded(11).transient_draw(0);
    let backoff_s = plan.backoff_s();
    faulted.pool().unwrap().install_fault_plan(plan);

    let clean = TpuAccel::over_pool(
        DevicePool::with_cores(TpuConfig::tpu_v2(), 2, 2),
        Duration::ZERO,
        256,
    );

    // Four identical lanes: both shards (and the retry shard) charge
    // bit-identical times, so each round's makespan equals the
    // surviving chip's charge for that round.
    let xs: Vec<Matrix<Complex64>> = (0..4).map(|_| complex_input(16, 9)).collect();
    let reference = clean.fft2d_batch(&xs).unwrap();
    let out = faulted.fft2d_batch(&xs).unwrap();
    for (a, b) in out.iter().zip(&reference) {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "retried flights serve bit-identical results"
        );
    }

    let pool = faulted.pool().unwrap();
    let stats = pool.fault_stats();
    assert_eq!(stats.transient_faults, 1, "exactly the forced draw faulted");
    assert_eq!(stats.retries, 1);
    let chip0 = pool.devices()[0].wall_seconds();
    let chip1 = pool.devices()[1].wall_seconds();
    assert!(
        chip0 > 0.0,
        "the faulted shard ran fully and charged its chip before being discarded"
    );
    assert!(chip1 > 0.0, "the retry ran on the surviving chip");
    let elapsed = faulted.elapsed_seconds();
    let expected = chip0 + chip1 + backoff_s;
    assert!(
        (elapsed - expected).abs() <= 1e-9 * expected,
        "merged timeline {elapsed} must equal the faulted round's charge plus \
         the retry round's charge plus one backoff {expected}"
    );
    assert!(
        elapsed > clean.elapsed_seconds(),
        "the fault costs timeline, never correctness"
    );
}
