//! The paper's first case study (Figure 5): train an image
//! classifier, distil it, and explain which image blocks drive each
//! classification — scored against the synthetic dataset's
//! ground-truth salient blocks.
//!
//! Run: `cargo run --release --example image_classification`

use tpu_xai::core::{ImageExplainer, SolveStrategy};
use tpu_xai::data::cifar::{as_training_pairs, ImageConfig, ImageDataset};
use tpu_xai::nn::models::vgg_small;
use tpu_xai::nn::Trainer;
use tpu_xai::tensor::TensorError;

fn main() -> Result<(), TensorError> {
    // Synthetic CIFAR-like data: 4 classes, each defined by a bright
    // pattern in a known 3x3-grid block.
    let dataset = ImageDataset::new(ImageConfig {
        classes: 4,
        size: 12,
        channels: 3,
        grid: 3,
        noise: 0.05,
        seed: 7,
    })?;
    let (train, test) = dataset.generate_split(16, 8)?;

    // Train the VGG-style classifier (paper benchmark 1 at toy scale).
    let mut net = vgg_small(3, 12, 4, 3)?;
    println!("training {} parameters…", net.parameter_count());
    let reports = Trainer::new(0.05, 0.9, 8, 0).fit(&mut net, &as_training_pairs(&train), 16)?;
    println!(
        "train accuracy {:.0}%, test accuracy {:.0}%",
        reports.last().map(|r| r.accuracy).unwrap_or(0.0) * 100.0,
        net.accuracy(&as_training_pairs(&test))? * 100.0
    );

    // Distil and explain.
    let explainer = ImageExplainer::fit(&mut net, &train, 3, SolveStrategy::default())?;
    for li in test.iter().take(3) {
        let ex = explainer.explain(&mut net, &li.image)?;
        println!(
            "\nlabel {} → predicted {}; ground-truth block {:?}, explanation's top block {:?}",
            li.label, ex.predicted_class, li.salient_block, ex.top_block
        );
        print!("{}", ex.to_heatmap());
    }

    let acc = explainer.localization_accuracy(&mut net, &test)?;
    println!(
        "\nexplanation localization accuracy on held-out images: {:.0}%",
        acc * 100.0
    );
    Ok(())
}
