//! Quickstart: distil a black-box model and explain one outcome in
//! ~40 lines — the whole pipeline of the paper on a toy problem.
//!
//! Run: `cargo run --example quickstart`

use tpu_xai::core::{block_contributions, DistilledModel, SolveStrategy};
use tpu_xai::tensor::{conv::conv2d_circular, Matrix, TensorError};

fn main() -> Result<(), TensorError> {
    // 1. A "black box": secretly a circular convolution with K_true.
    let k_true = Matrix::from_fn(8, 8, |r, c| ((r * 3 + c) % 5) as f64 * 0.25)?;
    let black_box = |x: &Matrix<f64>| conv2d_circular(x, &k_true);

    // 2. Collect input-output pairs (Figure 2: "corresponding
    //    input-output dataset").
    let pairs: Vec<(Matrix<f64>, Matrix<f64>)> = (0..6)
        .map(|s| {
            let x = Matrix::from_fn(8, 8, |r, c| ((r * 7 + c * 3 + s) % 11) as f64 - 5.0)
                .expect("valid dims");
            let y = black_box(&x).expect("same shape");
            (x, y)
        })
        .collect();

    // 3. Task transformation (Equations 2-4): the distilled model is
    //    solved in closed form through the frequency domain.
    let model = DistilledModel::fit(&pairs, SolveStrategy::default())?;
    println!(
        "distilled kernel recovered with max error {:.2e}",
        model.kernel().max_abs_diff(&k_true)?
    );
    println!(
        "distillation fidelity error: {:.2e}",
        model.fidelity_error(&pairs)?
    );

    // 4. Outcome interpretation (Equation 5): contribution factor of
    //    each 2x2 block of one input.
    let (x, y) = &pairs[0];
    let scores = block_contributions(&model, x, y, 4)?;
    println!("\nblock contribution factors (4x4 grid):");
    for r in 0..scores.rows() {
        let row: Vec<String> = (0..scores.cols())
            .map(|c| format!("{:6.2}", scores[(r, c)]))
            .collect();
        println!("  {}", row.join(" "));
    }
    Ok(())
}
