//! The paper's Figure 4 experiment as an example: sweep matrix sizes
//! across the three hardware models and watch the TPU's advantage
//! grow, then run Algorithm 1 on the simulated device directly, and
//! finally share one device between host worker threads (§III-D).
//!
//! Run: `cargo run --release --example scalability`

use std::sync::Arc;
use tpu_xai::accel::{Accelerator, CpuModel, GpuModel, TpuAccel};
use tpu_xai::core::{
    explain_batch_on, explain_batch_parallel_on, fft2d_on_device, transform_roundtrip_seconds,
    DistilledModel, SolveStrategy,
};
use tpu_xai::tensor::{conv::conv2d_circular, Complex64, Matrix, TensorError};
use tpu_xai::tpu::{SharedDevice, TpuConfig};

fn main() -> Result<(), TensorError> {
    println!("transform-solve-inverse round trip, simulated seconds:\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>9}",
        "size", "CPU", "GPU", "TPU", "TPU/CPU"
    );
    for n in [64usize, 128, 256, 512] {
        let cpu = CpuModel::i7_3700();
        let gpu = GpuModel::gtx1080();
        let tpu = TpuAccel::tpu_v2();
        let tc = transform_roundtrip_seconds(&cpu, n)?;
        let tg = transform_roundtrip_seconds(&gpu, n)?;
        let tt = transform_roundtrip_seconds(&tpu, n)?;
        println!(
            "{n:>8}² {:>10.1}µs {:>10.1}µs {:>10.1}µs {:>8.1}x",
            tc * 1e6,
            tg * 1e6,
            tt * 1e6,
            tc / tt
        );
    }

    // Algorithm 1 executed faithfully on the simulated device: the
    // numeric result comes from the cores, not a host fast path.
    println!("\nAlgorithm 1 on the simulated TPU device (16x16 input):");
    let x = Matrix::from_fn(16, 16, |r, c| {
        Complex64::new(((r * 3 + c) % 7) as f64, ((r + c) % 5) as f64)
    })?;
    for cores in [1usize, 4, 16] {
        let device = SharedDevice::with_cores(TpuConfig::tpu_v2(), cores);
        let spectrum = fft2d_on_device(&device, &x)?;
        let reference = tpu_xai::fourier::fft2d(&x)?;
        println!(
            "  {cores:>3} cores: wall {:.3} µs, comm {:.3} µs, {} collectives, max |Δ| vs host FFT = {:.1e}",
            device.wall_seconds() * 1e6,
            device.comm_seconds() * 1e6,
            device.collectives(),
            spectrum.max_abs_diff(&reference)?
        );
    }

    // §III-D on the host: many worker threads, ONE shared accelerator.
    // The kernels take &self, so the device handle crosses thread
    // boundaries as Arc<dyn Accelerator>; results are bit-identical
    // to serial execution.
    let k = Matrix::from_fn(32, 32, |r, c| ((r * 2 + c) % 5) as f64 * 0.2)?;
    let batch: Vec<_> = (0..12)
        .map(|s| {
            let x = Matrix::from_fn(32, 32, |r, c| (((r * 7 + c * 3 + s) % 11) as f64) - 5.0)
                .expect("valid dims");
            let y = conv2d_circular(&x, &k).expect("same shape");
            (x, y)
        })
        .collect();
    let model = DistilledModel::fit(&batch, SolveStrategy::default())?;
    let shared: Arc<dyn Accelerator> = Arc::new(TpuAccel::tpu_v2());
    println!("\nbatch explanation, one shared TPU, host worker threads:");
    for workers in [1usize, 2, 4, 8] {
        shared.reset();
        let maps = explain_batch_parallel_on(&*shared, &model, &batch, 4, workers)?;
        println!(
            "  {workers:>2} workers: {} maps, {} kernels on the shared device, {:.1} µs simulated",
            maps.len(),
            shared.stats().kernels,
            shared.elapsed_seconds() * 1e6
        );
    }
    let serial_acc = TpuAccel::tpu_v2();
    let serial = explain_batch_on(&serial_acc, &model, &batch, 4)?;
    let parallel = explain_batch_parallel_on(&*shared, &model, &batch, 4, 4)?;
    let identical = serial
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.as_slice() == b.as_slice());
    println!("  parallel == serial, bit for bit: {identical}");
    Ok(())
}
