//! The paper's Figure 4 experiment as an example: sweep matrix sizes
//! across the three hardware models and watch the TPU's advantage
//! grow, then run Algorithm 1 on the simulated device directly.
//!
//! Run: `cargo run --release --example scalability`

use tpu_xai::accel::{CpuModel, GpuModel, TpuAccel};
use tpu_xai::core::{fft2d_on_device, transform_roundtrip_seconds};
use tpu_xai::tensor::{Complex64, Matrix, TensorError};
use tpu_xai::tpu::{TpuConfig, TpuDevice};

fn main() -> Result<(), TensorError> {
    println!("transform-solve-inverse round trip, simulated seconds:\n");
    println!("{:>10} {:>12} {:>12} {:>12} {:>9}", "size", "CPU", "GPU", "TPU", "TPU/CPU");
    for n in [64usize, 128, 256, 512] {
        let mut cpu = CpuModel::i7_3700();
        let mut gpu = GpuModel::gtx1080();
        let mut tpu = TpuAccel::tpu_v2();
        let tc = transform_roundtrip_seconds(&mut cpu, n)?;
        let tg = transform_roundtrip_seconds(&mut gpu, n)?;
        let tt = transform_roundtrip_seconds(&mut tpu, n)?;
        println!(
            "{n:>8}² {:>10.1}µs {:>10.1}µs {:>10.1}µs {:>8.1}x",
            tc * 1e6,
            tg * 1e6,
            tt * 1e6,
            tc / tt
        );
    }

    // Algorithm 1 executed faithfully on the simulated device: the
    // numeric result comes from the cores, not a host fast path.
    println!("\nAlgorithm 1 on the simulated TPU device (16x16 input):");
    let x = Matrix::from_fn(16, 16, |r, c| {
        Complex64::new(((r * 3 + c) % 7) as f64, ((r + c) % 5) as f64)
    })?;
    for cores in [1usize, 4, 16] {
        let mut device = TpuDevice::with_cores(TpuConfig::tpu_v2(), cores);
        let spectrum = fft2d_on_device(&mut device, &x)?;
        let reference = tpu_xai::fourier::fft2d(&x)?;
        println!(
            "  {cores:>3} cores: wall {:.3} µs, comm {:.3} µs, {} collectives, max |Δ| vs host FFT = {:.1e}",
            device.wall_seconds() * 1e6,
            device.comm_seconds() * 1e6,
            device.collectives(),
            spectrum.max_abs_diff(&reference)?
        );
    }
    Ok(())
}
