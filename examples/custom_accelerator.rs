//! Extending the workspace with your own hardware model: implement
//! [`Accelerator`] for a hypothetical low-power edge NPU and race it
//! against the paper's three platforms on the interpretation
//! pipeline.
//!
//! The trait takes `&self` everywhere — mutable state (the simulated
//! clock) lives behind interior mutability, here the ready-made
//! [`Clock`] ledger — so the finished model is `Send + Sync` and can
//! be shared across worker threads as `Arc<dyn Accelerator>` with no
//! further work, as the final section demonstrates.
//!
//! Run: `cargo run --release --example custom_accelerator`

use std::sync::Arc;
use tpu_xai::accel::{Accelerator, Clock, CpuModel, GpuModel, KernelStats, TpuAccel};
use tpu_xai::core::{explain_batch_parallel_on, interpret_on, SolveStrategy};
use tpu_xai::fourier::global_plan_cache;
use tpu_xai::tensor::ops::{self, DivPolicy};
use tpu_xai::tensor::{conv::conv2d_circular, Complex64, Matrix, Result};

/// A hypothetical 2 W edge NPU: modest compute (250 GFLOP/s int8
/// class), modest bandwidth (25 GB/s LPDDR), no launch overhead
/// (tightly-coupled command queue).
#[derive(Debug, Clone, Default)]
struct EdgeNpu {
    clock: Clock,
}

impl EdgeNpu {
    const FLOPS: f64 = 2.5e11;
    const BYTES: f64 = 2.5e10;

    fn charge(&self, flops: f64, bytes: f64) {
        let dt = (flops / Self::FLOPS).max(bytes / Self::BYTES);
        self.clock.record(dt, flops, bytes);
    }
}

impl Accelerator for EdgeNpu {
    fn name(&self) -> String {
        "EdgeNPU (hypothetical 2 W part)".to_string()
    }

    fn matmul(&self, a: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>> {
        let out = ops::matmul_blocked(a, b, ops::DEFAULT_BLOCK)?;
        let (m, k) = a.shape();
        let n = b.cols();
        self.charge(
            2.0 * (m * k * n) as f64,
            8.0 * (m * k + k * n + m * n) as f64,
        );
        Ok(out)
    }

    fn fft2d(&self, x: &Matrix<Complex64>) -> Result<Matrix<Complex64>> {
        let (m, n) = x.shape();
        let out = global_plan_cache().plan_2d(m, n).forward(x)?;
        self.charge(
            6.0 * (m * n) as f64 * ((m * n) as f64).log2(),
            64.0 * (m * n) as f64,
        );
        Ok(out)
    }

    fn ifft2d(&self, x: &Matrix<Complex64>) -> Result<Matrix<Complex64>> {
        let (m, n) = x.shape();
        let out = global_plan_cache().plan_2d(m, n).inverse(x)?;
        self.charge(
            6.0 * (m * n) as f64 * ((m * n) as f64).log2(),
            64.0 * (m * n) as f64,
        );
        Ok(out)
    }

    fn hadamard(&self, a: &Matrix<Complex64>, b: &Matrix<Complex64>) -> Result<Matrix<Complex64>> {
        let out = ops::hadamard(a, b)?;
        self.charge(6.0 * a.len() as f64, 48.0 * a.len() as f64);
        Ok(out)
    }

    fn pointwise_div(
        &self,
        a: &Matrix<Complex64>,
        b: &Matrix<Complex64>,
        policy: DivPolicy,
    ) -> Result<Matrix<Complex64>> {
        let out = ops::pointwise_div(a, b, policy)?;
        self.charge(10.0 * a.len() as f64, 48.0 * a.len() as f64);
        Ok(out)
    }

    fn sub(&self, a: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>> {
        let out = ops::sub(a, b)?;
        self.charge(a.len() as f64, 24.0 * a.len() as f64);
        Ok(out)
    }

    fn charge_workload(&self, flops: f64, bytes: f64) {
        self.charge(flops, bytes);
    }

    fn elapsed_seconds(&self) -> f64 {
        self.clock.seconds()
    }

    fn stats(&self) -> KernelStats {
        self.clock.stats()
    }

    fn reset(&self) {
        self.clock.reset();
    }
}

fn main() -> Result<()> {
    // The interpretation workload of Table II on 64×64 pairs.
    let k = Matrix::from_fn(64, 64, |r, c| ((r + c * 2) % 5) as f64 * 0.2)?;
    let pairs: Vec<_> = (0..6)
        .map(|s| {
            let x = Matrix::from_fn(64, 64, |r, c| (((r * 13 + c * 7 + s) % 23) as f64) / 23.0)
                .expect("valid dims");
            let y = conv2d_circular(&x, &k).expect("same shape");
            (x, y)
        })
        .collect();

    let platforms: Vec<Box<dyn Accelerator>> = vec![
        Box::new(CpuModel::i7_3700()),
        Box::new(GpuModel::gtx1080()),
        Box::new(TpuAccel::tpu_v2()),
        Box::new(EdgeNpu::default()),
    ];
    println!("interpretation of 6 pairs (64x64, 4x4 blocks):\n");
    for p in &platforms {
        let (model, report) = interpret_on(p.as_ref(), &pairs, 4, SolveStrategy::default())?;
        println!(
            "{:38} {:10.1} µs   (fidelity err {:.1e})",
            p.name(),
            report.total_s() * 1e6,
            model.fidelity_error(&pairs)?
        );
    }

    // Because the trait is `&self` + `Send + Sync`, the custom model
    // is immediately shareable: four host threads explain the batch
    // through ONE EdgeNpu, and the results match serial execution.
    let model = tpu_xai::core::DistilledModel::fit(&pairs, SolveStrategy::default())?;
    let shared: Arc<dyn Accelerator> = Arc::new(EdgeNpu::default());
    let maps = explain_batch_parallel_on(&*shared, &model, &pairs, 4, 4)?;
    println!(
        "\n4 threads sharing one EdgeNpu explained {} inputs \
         ({} kernels, {:.1} µs simulated)",
        maps.len(),
        shared.stats().kernels,
        shared.elapsed_seconds() * 1e6
    );

    println!("\nAny platform that can run matmul/FFT/elementwise kernels plugs into");
    println!("the same pipeline — implement the Accelerator trait and race it.");
    Ok(())
}
